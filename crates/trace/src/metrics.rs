//! Process-wide metrics registry: counters, gauges, and log2-bucketed
//! histograms behind `&'static str` keys.
//!
//! Keys are static strings by design — recording never allocates, and the
//! namespace stays greppable (`dfs.*`, `job.*`, `index.*`, `op.*`). The
//! [`global`] registry is what the engine layers report into; scoped
//! registries can be created for tests.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// What a key identifies, for snapshot rendering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

/// Log2-bucketed histogram of `u64` observations.
///
/// Bucket `i` holds observations whose value needs `i` significant bits,
/// i.e. bucket 0 is exactly `0`, bucket `i` covers `[2^(i-1), 2^i)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of bucket `i`.
    fn bucket_limit(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the bucket containing the
    /// q-th observation (`q` in `[0, 1]`). Exact for the max, conservative
    /// (over-estimating by < 2x) elsewhere — the usual log2 trade-off.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_limit(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Nonzero buckets as `(bucket_index, count)` pairs — the compact wire
    /// form used by the JSON export.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }

    /// Rebuilds from the compact wire form (used by the JSON import).
    pub fn from_parts(pairs: &[(usize, u64)], sum: u64, min: u64, max: u64) -> Histogram {
        let mut h = Histogram::new();
        for &(i, n) in pairs {
            if i < h.buckets.len() {
                h.buckets[i] = n;
                h.count += n;
            }
        }
        h.sum = sum;
        h.min = if h.count == 0 { u64::MAX } else { min };
        h.max = max;
        h
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Thread-safe registry of named metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&self, key: &'static str, delta: u64) {
        *self.inner.lock().counters.entry(key).or_insert(0) += delta;
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, key: &'static str, value: i64) {
        self.inner.lock().gauges.insert(key, value);
    }

    /// Records `value` into the named log2 histogram.
    pub fn observe(&self, key: &'static str, value: u64) {
        self.inner
            .lock()
            .histograms
            .entry(key)
            .or_default()
            .observe(value);
    }

    /// Folds a whole histogram into the named one (e.g. per-job task
    /// timings rolled up into a process-lifetime histogram).
    pub fn observe_histogram(&self, key: &'static str, h: &Histogram) {
        self.inner
            .lock()
            .histograms
            .entry(key)
            .or_default()
            .merge(h);
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock();
        RegistrySnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Clears all metrics (test isolation).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }
}

/// Immutable copy of the registry at one instant.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<&'static str, u64>,
    pub gauges: BTreeMap<&'static str, i64>,
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl RegistrySnapshot {
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    pub fn gauge(&self, key: &str) -> i64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// Counter deltas relative to an earlier snapshot (saturating, so a
    /// reset between snapshots yields zeros rather than underflow).
    /// Gauges keep their later value; histograms keep the later copy.
    pub fn since(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&k, &v)| (k, v.saturating_sub(earlier.counter(k))))
            .collect();
        RegistrySnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Aligned text table of every metric, grouped by kind.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(20);
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$}  {v:>14}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k:<width$}  {v:>14}  (gauge)\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{k:<width$}  {:>14}  (n={} mean={:.1} p50={} p95={} max={})\n",
                h.sum(),
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.max(),
            ));
        }
        out
    }
}

/// The process-wide registry the engine layers report into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1110);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        // p50 lands in the bucket holding the 4th observation (value 3 →
        // bucket [2,4)), whose inclusive limit is 3.
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_is_exact_at_bucket_edges() {
        // Observations sitting exactly on inclusive bucket limits
        // (2^i - 1) come back unchanged at every rank.
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 7, 15, 31, 63, 127] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.125), 0);
        assert_eq!(h.quantile(0.25), 1);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(0.75), 31);
        assert_eq!(h.quantile(1.0), 127);
    }

    #[test]
    fn quantile_overestimates_by_less_than_two_x_within_a_bucket() {
        // Worst case of the log2 layout: a value just past a bucket edge
        // reports the bucket's upper limit, which stays under 2x the
        // true value. A second, larger observation keeps `max` from
        // masking the bucket limit.
        for v in [2u64, 5, 9, 100, 1000, 4097, 1 << 40] {
            let mut h = Histogram::new();
            h.observe(v);
            h.observe(u64::MAX / 4);
            let est = h.quantile(0.25); // rank 1 → v's bucket
            assert!(est >= v, "estimate {est} must not under-report {v}");
            assert!(est < 2 * v, "estimate {est} must stay under 2x of {v}");
        }
    }

    #[test]
    fn quantile_at_one_is_the_exact_max_even_mid_bucket() {
        let mut h = Histogram::new();
        for v in [3u64, 900, 77] {
            h.observe(v);
        }
        // 900's bucket limit is 1023; the estimator clamps to the
        // tracked max instead of reporting the limit.
        assert_eq!(h.quantile(1.0), 900);
        assert_eq!(Histogram::new().quantile(0.99), 0, "empty histogram");
    }

    #[test]
    fn histogram_merge_and_wire_form() {
        let mut a = Histogram::new();
        a.observe(5);
        a.observe(9);
        let mut b = Histogram::new();
        b.observe(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 1_000_000);
        let rebuilt = Histogram::from_parts(&a.nonzero_buckets(), a.sum(), a.min(), a.max());
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter_add("op.records", 10);
        reg.counter_add("op.records", 5);
        reg.gauge_set("dfs.nodes.alive", 16);
        reg.observe("job.task.micros", 250);
        reg.observe("job.task.micros", 800);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("op.records"), 15);
        assert_eq!(snap.gauge("dfs.nodes.alive"), 16);
        assert_eq!(snap.histograms["job.task.micros"].count(), 2);
        let rendered = snap.render();
        assert!(rendered.contains("op.records"));
        assert!(rendered.contains("dfs.nodes.alive"));
    }

    #[test]
    fn snapshot_since_saturates() {
        let reg = MetricsRegistry::new();
        reg.counter_add("a", 10);
        let before = reg.snapshot();
        reg.counter_add("a", 7);
        let after = reg.snapshot();
        assert_eq!(after.since(&before).counter("a"), 7);
        // A snapshot taken after a reset must not underflow.
        reg.reset();
        reg.counter_add("a", 1);
        assert_eq!(reg.snapshot().since(&before).counter("a"), 0);
    }
}
