//! Time-series layer over the metrics registry: a background sampler
//! snapshots a registry at a fixed interval into a fixed-capacity ring
//! window, so counters become rates and histograms become
//! p50/p95/p99-over-time.
//!
//! The window is deterministic to drive by hand ([`Sampler::tick`]) —
//! tests and the Pigeon `STATS;` statement both force a fresh sample
//! rather than waiting for the background thread, which exists so rates
//! stay current while the shell is idle between statements.

use crate::metrics::{MetricsRegistry, RegistrySnapshot};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Samples held per window; older ones fall off.
pub const DEFAULT_WINDOW: usize = 128;

/// One registry snapshot plus when (relative to the window's epoch) it
/// was taken.
#[derive(Clone, Debug)]
pub struct Sample {
    pub at: Duration,
    pub snapshot: RegistrySnapshot,
}

/// Fixed-capacity ring of registry samples with rate/percentile views.
#[derive(Debug)]
pub struct Window {
    epoch: Instant,
    capacity: usize,
    samples: VecDeque<Sample>,
}

impl Window {
    pub fn new(capacity: usize) -> Window {
        Window {
            epoch: Instant::now(),
            capacity: capacity.max(2),
            samples: VecDeque::new(),
        }
    }

    /// Records a snapshot taken now.
    pub fn push(&mut self, snapshot: RegistrySnapshot) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(Sample {
            at: self.epoch.elapsed(),
            snapshot,
        });
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Wall-clock covered by the window (first to last sample).
    pub fn span(&self) -> Duration {
        match (self.samples.front(), self.samples.back()) {
            (Some(first), Some(last)) => last.at.saturating_sub(first.at),
            _ => Duration::ZERO,
        }
    }

    /// Per-second counter rates, each as `(key, now, window_avg)`:
    /// `now` over the last sampling interval, `window_avg` over the whole
    /// window. Counters that never moved inside the window are omitted.
    pub fn rates(&self) -> Vec<(&'static str, f64, f64)> {
        let (Some(first), Some(last)) = (self.samples.front(), self.samples.back()) else {
            return Vec::new();
        };
        let prev = &self.samples[self.samples.len().saturating_sub(2)];
        let now_dt = last.at.saturating_sub(prev.at).as_secs_f64();
        let win_dt = last.at.saturating_sub(first.at).as_secs_f64();
        let mut out = Vec::new();
        for (&key, &v) in &last.snapshot.counters {
            let win_delta = v.saturating_sub(first.snapshot.counter(key));
            if win_delta == 0 {
                continue;
            }
            let now_delta = v.saturating_sub(prev.snapshot.counter(key));
            let now_rate = if now_dt > 0.0 {
                now_delta as f64 / now_dt
            } else {
                0.0
            };
            let win_rate = if win_dt > 0.0 {
                win_delta as f64 / win_dt
            } else {
                0.0
            };
            out.push((key, now_rate, win_rate));
        }
        out
    }

    /// Quantiles-over-time for one histogram key: `(at, p50, p95, p99)`
    /// per sample that has observations.
    pub fn quantiles(&self, key: &str) -> Vec<(Duration, u64, u64, u64)> {
        self.samples
            .iter()
            .filter_map(|s| {
                let h = s.snapshot.histograms.get(key)?;
                if h.count() == 0 {
                    return None;
                }
                Some((s.at, h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)))
            })
            .collect()
    }

    /// The latest snapshot, if any sample exists.
    pub fn latest(&self) -> Option<&Sample> {
        self.samples.back()
    }

    /// Aligned text report: counter rates, gauges, and histogram
    /// percentiles from the latest sample — the body of `STATS;`.
    pub fn render(&self) -> String {
        let Some(last) = self.samples.back() else {
            return "stats: no samples yet\n".to_string();
        };
        let mut out = format!(
            "stats: {} sample(s) over {}\n",
            self.samples.len(),
            crate::span::format_duration(self.span()),
        );
        let rates = self.rates();
        let width = last
            .snapshot
            .counters
            .keys()
            .chain(last.snapshot.gauges.keys())
            .chain(last.snapshot.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(20);
        if !rates.is_empty() {
            out.push_str(&format!(
                "  {:<width$}  {:>10}  {:>10}\n",
                "counter", "now/s", "avg/s"
            ));
            for (key, now, avg) in &rates {
                out.push_str(&format!("  {key:<width$}  {now:>10.1}  {avg:>10.1}\n"));
            }
        }
        let mut gauges: Vec<(&str, i64)> = Vec::new();
        for (&k, &v) in &last.snapshot.gauges {
            gauges.push((k, v));
        }
        if !gauges.is_empty() {
            out.push_str(&format!("  {:<width$}  {:>10}\n", "gauge", "value"));
            for (k, v) in gauges {
                out.push_str(&format!("  {k:<width$}  {v:>10}\n"));
            }
        }
        let hists: BTreeMap<&str, (u64, u64, u64, u64, u64)> = last
            .snapshot
            .histograms
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(&k, h)| {
                (
                    k,
                    (
                        h.count(),
                        h.quantile(0.5),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        h.max(),
                    ),
                )
            })
            .collect();
        if !hists.is_empty() {
            out.push_str(&format!(
                "  {:<width$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                "histogram", "n", "p50", "p95", "p99", "max"
            ));
            for (k, (n, p50, p95, p99, max)) in hists {
                out.push_str(&format!(
                    "  {k:<width$}  {n:>10}  {p50:>10}  {p95:>10}  {p99:>10}  {max:>10}\n"
                ));
            }
        }
        out
    }
}

struct SamplerShared {
    registry: &'static MetricsRegistry,
    window: Mutex<Window>,
}

/// Background sampler over a registry. Owns a thread that ticks at a
/// fixed interval; dropping the sampler stops the thread promptly.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    stop: Sender<()>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `registry` every `interval` into a window of
    /// [`DEFAULT_WINDOW`] samples.
    pub fn start(registry: &'static MetricsRegistry, interval: Duration) -> Sampler {
        let shared = Arc::new(SamplerShared {
            registry,
            window: Mutex::new(Window::new(DEFAULT_WINDOW)),
        });
        let (stop, rx) = mpsc::channel::<()>();
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("sh-trace-sampler".to_string())
            .spawn(move || loop {
                match rx.recv_timeout(interval) {
                    Err(RecvTimeoutError::Timeout) => {
                        let snap = thread_shared.registry.snapshot();
                        thread_shared.window.lock().push(snap);
                    }
                    _ => return,
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            shared,
            stop,
            handle: Some(handle),
        }
    }

    /// Takes one sample right now (deterministic path for tests and for
    /// `STATS;`, which wants data fresher than the last interval tick).
    pub fn tick(&self) {
        let snap = self.shared.registry.snapshot();
        self.shared.window.lock().push(snap);
    }

    /// Runs `f` against the current window.
    pub fn with_window<T>(&self, f: impl FnOnce(&Window) -> T) -> T {
        f(&self.shared.window.lock())
    }

    /// Renders the current window (see [`Window::render`]).
    pub fn render(&self) -> String {
        self.shared.window.lock().render()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaked_registry() -> &'static MetricsRegistry {
        Box::leak(Box::new(MetricsRegistry::new()))
    }

    #[test]
    fn window_turns_counters_into_rates() {
        let reg = MetricsRegistry::new();
        let mut w = Window::new(8);
        reg.counter_add("job.completed", 2);
        w.push(reg.snapshot());
        std::thread::sleep(Duration::from_millis(20));
        reg.counter_add("job.completed", 6);
        reg.counter_add("never.moves", 0);
        w.push(reg.snapshot());
        let rates = w.rates();
        assert_eq!(rates.len(), 1, "unmoved counters are omitted: {rates:?}");
        let (key, now, avg) = rates[0];
        assert_eq!(key, "job.completed");
        assert!(now > 0.0 && avg > 0.0);
        // 6 new observations over ≥20ms can't exceed 300/s.
        assert!(now <= 300.0, "rate {now} implausibly high");
    }

    #[test]
    fn window_is_bounded() {
        let reg = MetricsRegistry::new();
        let mut w = Window::new(4);
        for i in 0..10 {
            reg.counter_add("x", i);
            w.push(reg.snapshot());
        }
        assert_eq!(w.len(), 4);
        assert!(w.span() <= Duration::from_secs(1));
    }

    #[test]
    fn quantiles_over_time_track_the_histogram() {
        let reg = MetricsRegistry::new();
        let mut w = Window::new(8);
        reg.observe("job.task.micros", 100);
        w.push(reg.snapshot());
        for _ in 0..100 {
            reg.observe("job.task.micros", 4000);
        }
        w.push(reg.snapshot());
        let q = w.quantiles("job.task.micros");
        assert_eq!(q.len(), 2);
        let (_, p50_a, _, _) = q[0];
        let (_, p50_b, _, p99_b) = q[1];
        assert!(p50_b > p50_a, "median must rise with the new load");
        assert!(p99_b >= p50_b);
        assert!(w.quantiles("absent.key").is_empty());
    }

    #[test]
    fn render_reports_live_data() {
        let reg = MetricsRegistry::new();
        let mut w = Window::new(8);
        assert!(w.render().contains("no samples"));
        reg.counter_add("op.completed", 1);
        reg.gauge_set("dfs.nodes.alive", 25);
        reg.observe("job.wall.micros", 1234);
        w.push(reg.snapshot());
        reg.counter_add("op.completed", 3);
        w.push(reg.snapshot());
        let text = w.render();
        assert!(text.contains("op.completed"), "{text}");
        assert!(text.contains("dfs.nodes.alive"), "{text}");
        assert!(text.contains("job.wall.micros"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }

    #[test]
    fn background_sampler_ticks_and_stops() {
        let reg = leaked_registry();
        reg.counter_add("bg.counter", 1);
        let sampler = Sampler::start(reg, Duration::from_millis(5));
        sampler.tick(); // deterministic first sample
        let deadline = Instant::now() + Duration::from_secs(2);
        while sampler.with_window(|w| w.len()) < 3 {
            assert!(Instant::now() < deadline, "sampler never ticked");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(sampler); // must join promptly without hanging the test
    }
}
