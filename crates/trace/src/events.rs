//! Structured event journal: an append-only, bounded in-memory ring of
//! typed engine events, with an optional JSONL file sink.
//!
//! Layers report through [`emit`] — one short lock per event, no work
//! beyond the field strings the caller already built. The journal keeps
//! the last [`DEFAULT_CAPACITY`] events for `EVENTS;` queries plus exact
//! per-kind counts for the whole process lifetime, so event counts can
//! be reconciled against registry counters even after the ring wraps
//! (asserted by the event↔counter consistency chaos test).
//!
//! Event kinds are dotted static strings mirroring the metrics
//! namespaces: `job.*` (scheduler and executor lifecycle), `task.*`
//! (retries, speculation), `node.*` (kill/revive/blacklist), `cache.*`
//! (invalidation epoch bumps), `slots.*` (pool exhaustion), `dfs.*`
//! (re-replication), `query.*` (slow-query log).
//!
//! The JSONL sink is enabled either programmatically
//! ([`EventJournal::set_log_path`], surfaced in Pigeon as
//! `SET telemetry_log '<path>';`) or via the `SH_TELEMETRY_LOG`
//! environment variable, which the chaos CI stage uses so flaky runs
//! leave a post-hoc debuggable trace.

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::OnceLock;

/// Events held in memory; older ones fall off the ring (counts remain).
pub const DEFAULT_CAPACITY: usize = 1024;

/// One journaled engine event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (0-based, never reused).
    pub seq: u64,
    /// Dotted static kind, e.g. `task.retry`.
    pub kind: &'static str,
    /// Ordered key/value payload.
    pub fields: Vec<(&'static str, String)>,
}

impl Event {
    /// One-line text rendering: `#17 task.retry task=3 node=2`.
    pub fn render(&self) -> String {
        let mut s = format!("#{} {}", self.seq, self.kind);
        for (k, v) in &self.fields {
            s.push(' ');
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }

    /// Compact JSON object — one line of the JSONL sink.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"seq\":{},\"kind\":\"{}\"", self.seq, self.kind);
        for (k, v) in &self.fields {
            s.push_str(",\"");
            s.push_str(k);
            s.push_str("\":\"");
            s.push_str(&escape(v));
            s.push('"');
        }
        s.push('}');
        s
    }
}

/// Minimal JSON string escaping for field values (keys are static
/// identifiers and never need it).
fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct JournalInner {
    ring: VecDeque<Event>,
    capacity: usize,
    next_seq: u64,
    counts: BTreeMap<&'static str, u64>,
    sink: Option<(String, File)>,
}

/// Bounded event ring + lifetime counts + optional JSONL sink.
pub struct EventJournal {
    inner: Mutex<JournalInner>,
}

impl EventJournal {
    pub fn new() -> EventJournal {
        EventJournal::with_capacity(DEFAULT_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> EventJournal {
        EventJournal {
            inner: Mutex::new(JournalInner {
                ring: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
                capacity: capacity.max(1),
                next_seq: 0,
                counts: BTreeMap::new(),
                sink: None,
            }),
        }
    }

    /// Appends an event. Lock-cheap: one mutex, one ring push; a sink
    /// write failure is swallowed (telemetry must never fail the engine).
    pub fn emit(&self, kind: &'static str, fields: Vec<(&'static str, String)>) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        *inner.counts.entry(kind).or_insert(0) += 1;
        let event = Event { seq, kind, fields };
        if let Some((_, file)) = inner.sink.as_mut() {
            let _ = writeln!(file, "{}", event.to_json());
        }
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(event);
    }

    /// The last `n` in-ring events (oldest first), optionally restricted
    /// to kinds starting with `filter` — so `task` matches `task.retry`
    /// and `task.speculative.won` alike.
    pub fn recent(&self, n: usize, filter: Option<&str>) -> Vec<Event> {
        let inner = self.inner.lock();
        let matching: Vec<&Event> = inner
            .ring
            .iter()
            .filter(|e| filter.is_none_or(|f| e.kind.starts_with(f)))
            .collect();
        let skip = matching.len().saturating_sub(n);
        matching[skip..].iter().map(|e| (*e).clone()).collect()
    }

    /// Lifetime count of events of exactly this kind (ring-independent).
    pub fn count(&self, kind: &str) -> u64 {
        self.inner.lock().counts.get(kind).copied().unwrap_or(0)
    }

    /// Lifetime counts per kind.
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        self.inner.lock().counts.clone()
    }

    /// Total events ever emitted (== next sequence number).
    pub fn total(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Points the JSONL sink at `path` (append mode), or disables it with
    /// `None`. Subsequent events stream there one JSON object per line.
    pub fn set_log_path(&self, path: Option<&str>) -> Result<(), String> {
        let mut inner = self.inner.lock();
        match path {
            None => {
                inner.sink = None;
                Ok(())
            }
            Some(p) => {
                let file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)
                    .map_err(|e| format!("cannot open telemetry log {p}: {e}"))?;
                inner.sink = Some((p.to_string(), file));
                Ok(())
            }
        }
    }

    /// Current JSONL sink path, if any.
    pub fn log_path(&self) -> Option<String> {
        self.inner.lock().sink.as_ref().map(|(p, _)| p.clone())
    }

    /// Clears the ring and counts (test isolation). The sink, if any,
    /// stays attached.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.ring.clear();
        inner.counts.clear();
        inner.next_seq = 0;
    }
}

impl Default for EventJournal {
    fn default() -> EventJournal {
        EventJournal::new()
    }
}

/// The process-wide journal the engine layers report into. On first use
/// it honours `SH_TELEMETRY_LOG=<path>` to auto-attach the JSONL sink
/// (how the chaos CI stage captures a post-mortem trace).
pub fn journal() -> &'static EventJournal {
    static GLOBAL: OnceLock<EventJournal> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let j = EventJournal::new();
        if let Ok(path) = std::env::var("SH_TELEMETRY_LOG") {
            if !path.is_empty() {
                let _ = j.set_log_path(Some(&path));
            }
        }
        j
    })
}

/// Appends an event to the global journal.
pub fn emit(kind: &'static str, fields: Vec<(&'static str, String)>) {
    journal().emit(kind, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_but_counts_are_not() {
        let j = EventJournal::with_capacity(4);
        for i in 0..10u64 {
            j.emit("cache.invalidate", vec![("key", format!("/f{i}"))]);
        }
        assert_eq!(j.total(), 10);
        assert_eq!(j.count("cache.invalidate"), 10);
        let recent = j.recent(100, None);
        assert_eq!(recent.len(), 4, "ring holds only the last 4");
        assert_eq!(recent[0].seq, 6);
        assert_eq!(recent[3].seq, 9);
    }

    #[test]
    fn filter_matches_kind_prefixes() {
        let j = EventJournal::new();
        j.emit("task.retry", vec![("task", "3".to_string())]);
        j.emit("node.blacklist", vec![("node", "2".to_string())]);
        j.emit("task.speculative.won", vec![("task", "1".to_string())]);
        let tasks = j.recent(10, Some("task"));
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().all(|e| e.kind.starts_with("task")));
        let exact = j.recent(10, Some("task.retry"));
        assert_eq!(exact.len(), 1);
        assert!(j.recent(10, Some("dfs")).is_empty());
        // `recent(1, ...)` keeps the newest match.
        assert_eq!(j.recent(1, Some("task"))[0].kind, "task.speculative.won");
    }

    #[test]
    fn render_and_json_forms() {
        let j = EventJournal::new();
        j.emit(
            "job.started",
            vec![("job", "range".to_string()), ("splits", "2".to_string())],
        );
        let e = &j.recent(1, None)[0];
        assert_eq!(e.render(), "#0 job.started job=range splits=2");
        assert_eq!(
            e.to_json(),
            "{\"seq\":0,\"kind\":\"job.started\",\"job\":\"range\",\"splits\":\"2\"}"
        );
        // The JSONL line is valid by our own parser.
        let v = crate::json::parse(&e.to_json()).unwrap();
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("job.started"));
    }

    #[test]
    fn json_escapes_field_values() {
        let e = Event {
            seq: 1,
            kind: "cache.invalidate",
            fields: vec![("key", "a\"b\\c\nd".to_string())],
        };
        let v = crate::json::parse(&e.to_json()).unwrap();
        assert_eq!(v.get("key").and_then(|k| k.as_str()), Some("a\"b\\c\nd"));
    }

    #[test]
    fn jsonl_sink_appends_one_object_per_line() {
        let path = std::env::temp_dir().join(format!(
            "sh-trace-events-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let path_s = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        let j = EventJournal::new();
        j.set_log_path(Some(&path_s)).unwrap();
        assert_eq!(j.log_path().as_deref(), Some(path_s.as_str()));
        j.emit("node.kill", vec![("node", "0".to_string())]);
        j.emit("node.revive", vec![("node", "0".to_string())]);
        j.set_log_path(None).unwrap();
        j.emit("node.kill", vec![("node", "1".to_string())]); // not sunk
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            crate::json::parse(line).expect("every sink line parses");
        }
        assert!(lines[0].contains("node.kill"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_clears_ring_and_counts() {
        let j = EventJournal::new();
        j.emit("slots.exhausted", vec![]);
        j.reset();
        assert_eq!(j.total(), 0);
        assert_eq!(j.count("slots.exhausted"), 0);
        assert!(j.recent(10, None).is_empty());
    }
}
