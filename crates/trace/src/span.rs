//! Hierarchical spans with monotonic timing and key/value attributes.
//!
//! A [`Span`] is a cheaply-cloneable handle (`Arc` inside) so concurrent
//! task threads can open children under one parent wave span. Timing uses
//! a single monotonic epoch captured at the root, so child offsets are
//! consistent across the tree. Finished trees snapshot into plain
//! [`SpanRecord`] values for rendering and attachment to job profiles.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct SpanInner {
    name: String,
    start: Duration,
    end: Option<Duration>,
    attrs: Vec<(String, String)>,
    children: Vec<Span>,
}

/// Live span handle. Clone freely; all clones refer to the same span.
#[derive(Clone)]
pub struct Span {
    epoch: Instant,
    inner: Arc<Mutex<SpanInner>>,
}

impl Span {
    /// Opens a root span; its `Instant` becomes the epoch for the tree.
    pub fn root(name: impl Into<String>) -> Span {
        let epoch = Instant::now();
        Span {
            epoch,
            inner: Arc::new(Mutex::new(SpanInner {
                name: name.into(),
                start: Duration::ZERO,
                end: None,
                attrs: Vec::new(),
                children: Vec::new(),
            })),
        }
    }

    /// Opens a child span under this one.
    pub fn child(&self, name: impl Into<String>) -> Span {
        let child = Span {
            epoch: self.epoch,
            inner: Arc::new(Mutex::new(SpanInner {
                name: name.into(),
                start: self.epoch.elapsed(),
                end: None,
                attrs: Vec::new(),
                children: Vec::new(),
            })),
        };
        self.inner.lock().children.push(child.clone());
        child
    }

    /// Attaches a key/value attribute (last write wins on duplicate keys).
    pub fn attr(&self, key: impl Into<String>, value: impl ToString) {
        let key = key.into();
        let value = value.to_string();
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            inner.attrs.push((key, value));
        }
    }

    /// Closes the span. Idempotent; the first call wins. Unfinished spans
    /// are implicitly closed at snapshot time.
    pub fn finish(&self) {
        let now = self.epoch.elapsed();
        let mut inner = self.inner.lock();
        if inner.end.is_none() {
            inner.end = Some(now);
        }
    }

    /// Elapsed time so far (or final duration once finished).
    pub fn elapsed(&self) -> Duration {
        let inner = self.inner.lock();
        inner.end.unwrap_or_else(|| self.epoch.elapsed()) - inner.start
    }

    /// Snapshots this span and its subtree into plain records, implicitly
    /// finishing anything still open.
    pub fn record(&self) -> SpanRecord {
        let now = self.epoch.elapsed();
        let inner = self.inner.lock();
        SpanRecord {
            name: inner.name.clone(),
            start: inner.start,
            duration: inner.end.unwrap_or(now) - inner.start,
            attrs: inner.attrs.clone(),
            children: inner.children.iter().map(|c| c.record()).collect(),
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("name", &self.inner.lock().name)
            .finish()
    }
}

/// Immutable snapshot of a finished span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    pub name: String,
    /// Offset from the root span's start.
    pub start: Duration,
    pub duration: Duration,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Total number of spans in this subtree (including self).
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanRecord::span_count)
            .sum::<usize>()
    }

    /// Finds the first descendant (depth-first) with the given name.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Render adapter: `format!("{}", SpanTree(&record))` draws the tree.
pub struct SpanTree<'a>(pub &'a SpanRecord);

impl std::fmt::Display for SpanTree<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn node(
            f: &mut std::fmt::Formatter<'_>,
            rec: &SpanRecord,
            prefix: &str,
            last: bool,
            root: bool,
        ) -> std::fmt::Result {
            let (branch, cont) = if root {
                ("", "")
            } else if last {
                ("└─ ", "   ")
            } else {
                ("├─ ", "│  ")
            };
            let label = format!("{prefix}{branch}{}", rec.name);
            write!(f, "{label:<44} {:>10}", format_duration(rec.duration))?;
            if !rec.attrs.is_empty() {
                let attrs: Vec<String> =
                    rec.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                write!(f, "  [{}]", attrs.join(" "))?;
            }
            writeln!(f)?;
            let child_prefix = format!("{prefix}{cont}");
            for (i, c) in rec.children.iter().enumerate() {
                node(f, c, &child_prefix, i + 1 == rec.children.len(), false)?;
            }
            Ok(())
        }
        node(f, self.0, "", true, true)
    }
}

/// Critical path through a finished span tree: starting at the root,
/// repeatedly descend into the longest-running child. The result is the
/// chain of spans that bounded the tree's wall-clock — shortening any
/// other span cannot make the whole tree faster.
pub fn critical_path(root: &SpanRecord) -> Vec<&SpanRecord> {
    let mut path = vec![root];
    let mut cur = root;
    while let Some(next) = cur.children.iter().max_by_key(|c| c.duration) {
        path.push(next);
        cur = next;
    }
    path
}

/// Render adapter for `EXPLAIN ANALYZE`: a waterfall of the span tree —
/// each span drawn as a bar positioned by its start offset and scaled by
/// its duration relative to the root — with the critical path marked `◆`
/// and summarized below the chart.
pub struct Waterfall<'a>(pub &'a SpanRecord);

impl Waterfall<'_> {
    const BAR: usize = 30;

    fn bar(rel_start: Duration, duration: Duration, total: Duration) -> String {
        let total_ns = total.as_nanos().max(1);
        let begin = ((rel_start.as_nanos() * Self::BAR as u128) / total_ns) as usize;
        let begin = begin.min(Self::BAR - 1);
        let end_ns = (rel_start + duration).as_nanos().min(total_ns);
        let end = (end_ns * Self::BAR as u128).div_ceil(total_ns) as usize;
        let end = end.clamp(begin + 1, Self::BAR);
        let mut out = String::with_capacity(Self::BAR + 2);
        out.push('▕');
        for i in 0..Self::BAR {
            out.push(if i >= begin && i < end { '█' } else { '·' });
        }
        out.push('▏');
        out
    }
}

impl std::fmt::Display for Waterfall<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let root = self.0;
        let total = root.duration;
        let on_path: Vec<*const SpanRecord> = critical_path(root)
            .into_iter()
            .map(|s| s as *const SpanRecord)
            .collect();
        writeln!(f, "{:<44} {:>10} {:>10}  waterfall", "span", "start", "dur")?;
        #[allow(clippy::too_many_arguments)]
        fn node(
            f: &mut std::fmt::Formatter<'_>,
            rec: &SpanRecord,
            prefix: &str,
            last: bool,
            root: bool,
            root_start: Duration,
            total: Duration,
            on_path: &[*const SpanRecord],
        ) -> std::fmt::Result {
            let (branch, cont) = if root {
                ("", "")
            } else if last {
                ("└─ ", "   ")
            } else {
                ("├─ ", "│  ")
            };
            let label = format!("{prefix}{branch}{}", rec.name);
            let rel = rec.start.saturating_sub(root_start);
            let marked = on_path.iter().any(|&p| std::ptr::eq(p, rec));
            writeln!(
                f,
                "{label:<44} {:>10} {:>10}  {}{}",
                format_duration(rel),
                format_duration(rec.duration),
                Waterfall::bar(rel, rec.duration, total),
                if marked { " ◆" } else { "" }
            )?;
            let child_prefix = format!("{prefix}{cont}");
            for (i, c) in rec.children.iter().enumerate() {
                node(
                    f,
                    c,
                    &child_prefix,
                    i + 1 == rec.children.len(),
                    false,
                    root_start,
                    total,
                    on_path,
                )?;
            }
            Ok(())
        }
        node(f, root, "", true, true, root.start, total, &on_path)?;

        let chain = critical_path(root);
        let names: Vec<&str> = chain.iter().map(|s| s.name.as_str()).collect();
        writeln!(f, "critical path (◆): {}", names.join(" → "))?;
        if let Some(phase) = chain.get(1) {
            let pct = if total.as_nanos() > 0 {
                100.0 * phase.duration.as_secs_f64() / total.as_secs_f64()
            } else {
                100.0
            };
            write!(
                f,
                "dominant phase: {} — {:.0}% of {} wall-clock",
                phase.name,
                pct.min(100.0),
                format_duration(total)
            )?;
            if !phase.attrs.is_empty() {
                let attrs: Vec<String> = phase
                    .attrs
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                write!(f, " [{}]", attrs.join(" "))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Human-scale duration: `428ns`, `1.2ms`, `3.45s`.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_attrs() {
        let root = Span::root("job");
        root.attr("op", "range");
        root.attr("op", "range-spatial"); // overwrite
        let wave = root.child("map-wave");
        let t0 = wave.child("task-0");
        t0.finish();
        let t1 = wave.child("task-1");
        t1.finish();
        wave.finish();
        root.finish();

        let rec = root.record();
        assert_eq!(rec.span_count(), 4);
        assert_eq!(
            rec.attrs,
            vec![("op".to_string(), "range-spatial".to_string())]
        );
        assert_eq!(rec.children.len(), 1);
        assert_eq!(rec.children[0].children.len(), 2);
        assert!(rec.find("task-1").is_some());
        assert!(rec.find("task-9").is_none());
        // children start at or after the parent
        assert!(rec.children[0].start >= rec.start);
    }

    #[test]
    fn record_implicitly_finishes() {
        let root = Span::root("job");
        let _child = root.child("open-ended");
        let rec = root.record();
        assert_eq!(rec.children.len(), 1);
    }

    #[test]
    fn tree_renders_every_span() {
        let root = Span::root("job");
        let wave = root.child("map-wave");
        wave.attr("tasks", 8);
        wave.finish();
        root.child("shuffle").finish();
        root.finish();
        let text = format!("{}", SpanTree(&root.record()));
        assert!(text.contains("job"));
        assert!(text.contains("├─ map-wave"));
        assert!(text.contains("└─ shuffle"));
        assert!(text.contains("tasks=8"));
    }

    #[test]
    fn critical_path_follows_the_longest_child() {
        let mk = |name: &str, start_ms: u64, dur_ms: u64, children: Vec<SpanRecord>| SpanRecord {
            name: name.to_string(),
            start: Duration::from_millis(start_ms),
            duration: Duration::from_millis(dur_ms),
            attrs: Vec::new(),
            children,
        };
        let root = mk(
            "job",
            0,
            100,
            vec![
                mk("map-wave", 0, 80, vec![mk("map-1", 5, 70, vec![])]),
                mk("reduce-wave", 80, 15, vec![]),
            ],
        );
        let path: Vec<&str> = critical_path(&root)
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(path, vec!["job", "map-wave", "map-1"]);
    }

    #[test]
    fn waterfall_marks_the_critical_path_and_draws_bars() {
        let mk = |name: &str, start_ms: u64, dur_ms: u64, children: Vec<SpanRecord>| SpanRecord {
            name: name.to_string(),
            start: Duration::from_millis(start_ms),
            duration: Duration::from_millis(dur_ms),
            attrs: vec![("tasks".to_string(), "2".to_string())],
            children,
        };
        let root = mk(
            "job:range",
            0,
            100,
            vec![mk("map-wave", 0, 90, vec![]), mk("shuffle", 90, 8, vec![])],
        );
        let text = format!("{}", Waterfall(&root));
        assert!(text.contains("job:range"), "{text}");
        assert!(text.contains("├─ map-wave"), "{text}");
        assert!(text.contains('█'), "bars must be drawn: {text}");
        assert!(
            text.contains("critical path (◆): job:range → map-wave"),
            "{text}"
        );
        assert!(text.contains("dominant phase: map-wave — 90% of"), "{text}");
        // The critical-path marker lands on root and map-wave, not shuffle.
        let marked: Vec<&str> = text.lines().filter(|l| l.ends_with('◆')).collect();
        assert_eq!(marked.len(), 2, "{text}");
        assert!(marked[0].contains("job:range"));
        assert!(marked[1].contains("map-wave"));
    }

    #[test]
    fn waterfall_bars_scale_with_offset_and_duration() {
        // A short span late in the job must produce a bar whose filled
        // cells sit at the right edge.
        let bar = Waterfall::bar(
            Duration::from_millis(90),
            Duration::from_millis(10),
            Duration::from_millis(100),
        );
        assert_eq!(bar.chars().filter(|&c| c == '█').count(), 3);
        assert!(bar.ends_with("███▏"), "{bar}");
        // Zero-duration spans still show one cell so they are visible.
        let dot = Waterfall::bar(Duration::ZERO, Duration::ZERO, Duration::from_millis(100));
        assert_eq!(dot.chars().filter(|&c| c == '█').count(), 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.5ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00s");
    }
}
