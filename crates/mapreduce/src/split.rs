//! Input splits: the unit of map-task scheduling.

use sh_dfs::{BlockInfo, Dfs, DfsError, NodeId};

/// One map task's input: a set of blocks read together, plus optional
/// spatial metadata attached by the SpatialFileSplitter in `sh-core`.
///
/// Plain Hadoop jobs use one split per block ([`InputSplit::from_file`]).
/// SpatialHadoop jobs use one split per *index partition* (all blocks of
/// the partition file), carrying the partition MBR so local-processing
/// steps can apply partition-relative pruning rules.
#[derive(Clone, Debug)]
pub struct InputSplit {
    /// Path the blocks belong to (diagnostics only).
    pub path: String,
    /// Blocks to read, in order.
    pub blocks: Vec<BlockInfo>,
    /// Input tag for multi-input jobs (e.g. joins: 0 = left, 1 = right).
    pub tag: u32,
    /// Index-partition id when this split is a spatial partition.
    pub partition_id: Option<usize>,
    /// Partition MBR `[x1, y1, x2, y2]` when spatially partitioned.
    pub mbr: Option<[f64; 4]>,
    /// Byte length of the leading blocks that belong to the *first* input
    /// of a two-input split (distributed join pairs two partitions in one
    /// split; blocks are record-aligned so this cuts between records).
    pub first_input_bytes: Option<u64>,
    /// Opaque per-split payload attached by the driver (e.g. the
    /// dominance-power set a skyline mapper prunes against).
    pub aux: Option<String>,
}

impl InputSplit {
    /// Splits a two-input split's concatenated data back into the first
    /// and second input's text.
    ///
    /// The cut point is clamped to the data actually read (and to a
    /// UTF-8 boundary): a short read — e.g. from a degraded replica —
    /// must not panic the task, it just yields a shorter first input.
    pub fn split_data<'a>(&self, data: &'a str) -> (&'a str, &'a str) {
        match self.first_input_bytes {
            Some(b) => {
                let mut cut = (b as usize).min(data.len());
                while cut > 0 && !data.is_char_boundary(cut) {
                    cut -= 1;
                }
                data.split_at(cut)
            }
            None => (data, ""),
        }
    }

    /// Byte-level variant of [`InputSplit::split_data`] for binary
    /// blocks: same short-read clamping, but no UTF-8 boundary search —
    /// binary partitions are whole files, so the recorded cut is exact.
    pub fn split_data_bytes<'a>(&self, data: &'a [u8]) -> (&'a [u8], &'a [u8]) {
        match self.first_input_bytes {
            Some(b) => data.split_at((b as usize).min(data.len())),
            None => (data, &[]),
        }
    }
}

impl InputSplit {
    /// One split per block of `path` — Hadoop's default splitter.
    pub fn from_file(dfs: &Dfs, path: &str) -> Result<Vec<InputSplit>, DfsError> {
        Ok(dfs
            .block_locations(path)?
            .into_iter()
            .map(|b| InputSplit {
                path: path.to_string(),
                blocks: vec![b],
                tag: 0,
                partition_id: None,
                mbr: None,
                first_input_bytes: None,
                aux: None,
            })
            .collect())
    }

    /// A single split covering the whole file (small side-inputs).
    pub fn whole_file(dfs: &Dfs, path: &str) -> Result<InputSplit, DfsError> {
        Ok(InputSplit {
            path: path.to_string(),
            blocks: dfs.block_locations(path)?,
            tag: 0,
            partition_id: None,
            mbr: None,
            first_input_bytes: None,
            aux: None,
        })
    }

    /// Total input bytes.
    pub fn len(&self) -> u64 {
        self.blocks.iter().map(|b| b.len).sum()
    }

    /// True when the split has no blocks (empty partition file).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Nodes holding a replica of the first block — the scheduler's
    /// locality preference list.
    pub fn preferred_nodes(&self) -> &[NodeId] {
        self.blocks
            .first()
            .map(|b| b.replicas.as_slice())
            .unwrap_or(&[])
    }

    /// Returns a copy tagged as input `tag` (multi-input jobs).
    pub fn with_tag(mut self, tag: u32) -> InputSplit {
        self.tag = tag;
        self
    }

    /// Attaches spatial partition metadata.
    pub fn with_partition(mut self, id: usize, mbr: [f64; 4]) -> InputSplit {
        self.partition_id = Some(id);
        self.mbr = Some(mbr);
        self
    }

    /// Attaches an opaque driver payload.
    pub fn with_aux(mut self, aux: String) -> InputSplit {
        self.aux = Some(aux);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sh_dfs::ClusterConfig;

    #[test]
    fn from_file_yields_one_split_per_block() {
        let fs = Dfs::new(ClusterConfig::small_for_tests()); // 8 KiB blocks
        let mut w = fs.create("/f").unwrap();
        for i in 0..2000 {
            w.write_line(&format!("{i} {i}"));
        }
        w.close().unwrap();
        let splits = InputSplit::from_file(&fs, "/f").unwrap();
        assert_eq!(splits.len(), fs.stat("/f").unwrap().num_blocks);
        assert!(splits.len() > 1);
        let total: u64 = splits.iter().map(InputSplit::len).sum();
        assert_eq!(total, fs.stat("/f").unwrap().len);
        for s in &splits {
            assert!(!s.preferred_nodes().is_empty());
        }
    }

    #[test]
    fn whole_file_is_one_split() {
        let fs = Dfs::new(ClusterConfig::small_for_tests());
        fs.write_string("/f", &"r\n".repeat(10_000)).unwrap();
        let s = InputSplit::whole_file(&fs, "/f").unwrap();
        assert!(s.blocks.len() > 1);
        assert_eq!(s.len(), fs.stat("/f").unwrap().len);
    }

    #[test]
    fn split_data_clamps_short_reads() {
        let fs = Dfs::new(ClusterConfig::small_for_tests());
        fs.write_string("/f", "a\nb\n").unwrap();
        let mut s = InputSplit::whole_file(&fs, "/f").unwrap();
        s.first_input_bytes = Some(2);
        assert_eq!(s.split_data("a\nb\n"), ("a\n", "b\n"));
        // Regression: a short read used to panic in split_at; now the
        // cut clamps to whatever data arrived.
        s.first_input_bytes = Some(100);
        assert_eq!(s.split_data("a\n"), ("a\n", ""));
        s.first_input_bytes = Some(2);
        assert_eq!(s.split_data(""), ("", ""));
        // Cuts land on UTF-8 boundaries, not mid-codepoint.
        s.first_input_bytes = Some(1);
        assert_eq!(s.split_data("é\n"), ("", "é\n"));
    }

    #[test]
    fn split_data_bytes_cuts_exactly_and_clamps() {
        let fs = Dfs::new(ClusterConfig::small_for_tests());
        fs.write_string("/f", "ab").unwrap();
        let mut s = InputSplit::whole_file(&fs, "/f").unwrap();
        s.first_input_bytes = Some(3);
        let data = [1u8, 2, 3, 4, 5];
        assert_eq!(s.split_data_bytes(&data), (&data[..3], &data[3..]));
        s.first_input_bytes = Some(100);
        assert_eq!(s.split_data_bytes(&data), (&data[..], &[][..]));
        s.first_input_bytes = None;
        assert_eq!(s.split_data_bytes(&data), (&data[..], &[][..]));
    }

    #[test]
    fn tagging_and_partition_metadata() {
        let fs = Dfs::new(ClusterConfig::small_for_tests());
        fs.write_string("/f", "1 1\n").unwrap();
        let s = InputSplit::whole_file(&fs, "/f")
            .unwrap()
            .with_tag(1)
            .with_partition(7, [0.0, 0.0, 10.0, 10.0]);
        assert_eq!(s.tag, 1);
        assert_eq!(s.partition_id, Some(7));
        assert_eq!(s.mbr, Some([0.0, 0.0, 10.0, 10.0]));
    }
}
