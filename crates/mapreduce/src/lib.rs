//! # sh-mapreduce — simulated MapReduce engine
//!
//! An in-process MapReduce engine over the simulated HDFS of [`sh_dfs`],
//! faithful to the aspects of Hadoop that SpatialHadoop's evaluation
//! depends on:
//!
//! * **splits & locality** — one map task per input split (a partition's
//!   blocks), scheduled preferentially on a node holding a replica;
//! * **map → combine → shuffle → sort → reduce** — with byte-level
//!   accounting of input, shuffle, and output volume;
//! * **job startup overhead** — every job pays a fixed simulated cost,
//!   which is what makes multi-round algorithms lose to single-round
//!   designs in the experiments;
//! * **map-only jobs** — tasks may write final output directly, the
//!   mechanism behind the "early flush / pruning" steps of the enhanced
//!   operations.
//!
//! Execution is real (map/reduce functions run on a thread pool and their
//! compute time is measured) while *cluster time* is simulated by the
//! [`cost`] model from task byte counts, measured compute, and the slot
//! topology in [`sh_dfs::ClusterConfig`]. Experiments report simulated
//! cluster time; correctness tests only look at outputs, which are
//! deterministic.

pub mod context;
pub mod cost;
pub mod counters;
pub mod executor;
pub mod job;
pub mod scheduler;
pub mod split;

pub use context::{CounterHandle, MapContext, ReduceContext};
pub use cost::SimBreakdown;
pub use counters::Counters;
pub use executor::JobOutcome;
pub use job::{fail_corrupt, CorruptInput, Job, JobBuilder, JobError, Mapper, NoReducer, Reducer};
pub use scheduler::{
    JobHandle, JobInfo, JobScheduler, JobState, SchedConfig, SchedError, SchedPolicy,
};
pub use split::InputSplit;
