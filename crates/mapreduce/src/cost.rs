//! Simulated cluster-time model.
//!
//! Converts per-task byte counts and measured compute time into the time
//! the job would take on the configured cluster. The model captures the
//! effects the paper's experiments are about:
//!
//! * per-**job** startup overhead (multi-round algorithms pay it per
//!   round — the reason CG_Hadoop-style designs insist on one round);
//! * per-**task** startup overhead (scanning every block of a large heap
//!   file costs many task launches; a pruned spatial job launches few);
//! * disk vs. network bandwidth for local vs. remote reads, shuffle
//!   traffic always at network bandwidth;
//! * slot-limited waves: with `m` map slots, `t` equal tasks take
//!   `ceil(t/m)` waves — modeled by greedy longest-processing-time list
//!   scheduling onto per-node slots.
//!
//! Shuffle and reduce are charged sequentially after the map phase
//! (Hadoop overlaps them partially; the additive model preserves ordering
//! between algorithm variants, which is all the experiments compare).

use sh_dfs::ClusterConfig;

/// Cost inputs of one executed task.
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskCost {
    /// Node the task was scheduled on.
    pub node: usize,
    /// Bytes read from replicas on the same node.
    pub local_bytes: u64,
    /// Bytes read over the network.
    pub remote_bytes: u64,
    /// Bytes written to the DFS (final output).
    pub output_bytes: u64,
    /// Measured compute seconds (map/reduce function wall time).
    pub compute_seconds: f64,
}

impl TaskCost {
    /// Simulated duration of this task on the cluster (stragglers run
    /// their I/O and compute proportionally slower; with speculative
    /// execution a backup attempt on a healthy node caps the damage at
    /// twice the healthy duration).
    pub fn duration(&self, cfg: &ClusterConfig) -> f64 {
        let remote_bw = cfg.network_bandwidth / cfg.network_oversubscription.max(1.0);
        let variable = self.local_bytes as f64 / cfg.disk_bandwidth
            + self.remote_bytes as f64 / remote_bw
            + self.output_bytes as f64 / cfg.disk_bandwidth
            + self.compute_seconds;
        let slow = cfg.node_slowdown(self.node);
        let effective = if cfg.speculative_execution && slow > 1.0 {
            (slow * variable).min(2.0 * variable + cfg.task_startup_overhead)
        } else {
            slow * variable
        };
        cfg.task_startup_overhead + effective
    }
}

/// Simulated time of a whole job, by phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimBreakdown {
    /// Fixed job startup cost.
    pub startup: f64,
    /// Map-phase makespan (slot-limited).
    pub map: f64,
    /// Shuffle transfer time.
    pub shuffle: f64,
    /// Reduce-phase makespan (slot-limited).
    pub reduce: f64,
}

impl SimBreakdown {
    /// Total simulated job time.
    pub fn total(&self) -> f64 {
        self.startup + self.map + self.shuffle + self.reduce
    }

    /// Sums phase-wise (multi-job operations report the sum over jobs).
    pub fn add(&self, other: &SimBreakdown) -> SimBreakdown {
        SimBreakdown {
            startup: self.startup + other.startup,
            map: self.map + other.map,
            shuffle: self.shuffle + other.shuffle,
            reduce: self.reduce + other.reduce,
        }
    }
}

/// Makespan of `tasks` on `slots_per_node` slots across the nodes the
/// tasks are pinned to (tasks were already assigned to nodes by the
/// locality scheduler): greedy LPT onto each node's slot timelines.
pub fn makespan(tasks: &[TaskCost], cfg: &ClusterConfig, slots_per_node: usize) -> f64 {
    if tasks.is_empty() {
        return 0.0;
    }
    let slots = slots_per_node.max(1);
    // Group durations by node.
    let n = cfg.num_nodes.max(1);
    let mut per_node: Vec<Vec<f64>> = vec![Vec::new(); n];
    for t in tasks {
        per_node[t.node % n].push(t.duration(cfg));
    }
    let mut worst: f64 = 0.0;
    for durations in per_node.iter_mut() {
        if durations.is_empty() {
            continue;
        }
        durations.sort_by(|a, b| b.total_cmp(a)); // LPT
        let mut timeline = vec![0.0f64; slots];
        for d in durations.iter() {
            let slot = timeline
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            timeline[slot] += d;
        }
        worst = worst.max(timeline.iter().copied().fold(0.0, f64::max));
    }
    worst
}

/// Shuffle transfer time: all intermediate bytes cross the network, with
/// up to `num_nodes` parallel streams.
pub fn shuffle_time(shuffle_bytes: u64, cfg: &ClusterConfig) -> f64 {
    if shuffle_bytes == 0 {
        return 0.0;
    }
    shuffle_bytes as f64 / (cfg.network_bandwidth * cfg.num_nodes as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig {
            num_nodes: 2,
            map_slots_per_node: 2,
            disk_bandwidth: 100.0,
            network_bandwidth: 50.0,
            network_oversubscription: 1.0,
            task_startup_overhead: 1.0,
            ..ClusterConfig::small_for_tests()
        }
    }

    #[test]
    fn task_duration_charges_bandwidths() {
        let t = TaskCost {
            node: 0,
            local_bytes: 200,  // 2s at 100 B/s
            remote_bytes: 100, // 2s at 50 B/s
            output_bytes: 100, // 1s at 100 B/s
            compute_seconds: 0.5,
        };
        assert!((t.duration(&cfg()) - (1.0 + 2.0 + 2.0 + 1.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn makespan_uses_slots() {
        // Four identical 1s-compute tasks on one node with 2 slots: two
        // waves.
        let t = TaskCost {
            node: 0,
            compute_seconds: 1.0,
            ..TaskCost::default()
        };
        let tasks = vec![t; 4];
        let m = makespan(&tasks, &cfg(), 2);
        assert!((m - 2.0 * (1.0 + 1.0)).abs() < 1e-12); // 2 waves × (startup+compute)
    }

    #[test]
    fn makespan_is_max_over_nodes() {
        let mk = |node: usize, secs: f64| TaskCost {
            node,
            compute_seconds: secs,
            ..TaskCost::default()
        };
        let tasks = vec![mk(0, 1.0), mk(1, 5.0)];
        let m = makespan(&tasks, &cfg(), 2);
        assert!((m - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_job_costs_nothing_beyond_startup() {
        assert_eq!(makespan(&[], &cfg(), 2), 0.0);
        assert_eq!(shuffle_time(0, &cfg()), 0.0);
    }

    #[test]
    fn oversubscription_slows_remote_reads() {
        let mut c = cfg();
        c.network_oversubscription = 4.0;
        let t = TaskCost {
            node: 0,
            remote_bytes: 100, // 2s at 50 B/s point-to-point, 8s shared
            ..TaskCost::default()
        };
        assert!((t.duration(&c) - (1.0 + 8.0)).abs() < 1e-12);
    }

    #[test]
    fn speculative_execution_caps_straggler_damage() {
        let mut c = cfg();
        c.stragglers = 1;
        c.straggler_slowdown = 10.0;
        let t = TaskCost {
            node: 0,
            compute_seconds: 1.0,
            ..TaskCost::default()
        };
        assert!((t.duration(&c) - 11.0).abs() < 1e-12, "no speculation: 10x");
        c.speculative_execution = true;
        // Backup attempt: startup + min(10, 2 + startup) = 1 + 3.
        assert!((t.duration(&c) - 4.0).abs() < 1e-12, "{}", t.duration(&c));
    }

    #[test]
    fn stragglers_slow_their_tasks() {
        let mut c = cfg();
        c.stragglers = 1;
        c.straggler_slowdown = 4.0;
        let t = |node: usize| TaskCost {
            node,
            compute_seconds: 1.0,
            ..TaskCost::default()
        };
        // Same work, straggler node pays 4x the variable part.
        assert!((t(0).duration(&c) - (1.0 + 4.0)).abs() < 1e-12);
        assert!((t(1).duration(&c) - (1.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn breakdown_adds() {
        let a = SimBreakdown {
            startup: 1.0,
            map: 2.0,
            shuffle: 3.0,
            reduce: 4.0,
        };
        let b = a.add(&a);
        assert_eq!(b.total(), 20.0);
    }
}
