//! Task-side contexts handed to map and reduce functions.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Partition function of the shuffle: which reducer a key belongs to.
/// Uses a fixed-algorithm hasher so runs are deterministic.
pub(crate) fn bucket_of<K: Hash>(key: &K, buckets: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % buckets as u64) as usize
}

/// Handle to a job counter registered once per task with
/// [`MapContext::register_counter`]/[`ReduceContext::register_counter`].
/// Incrementing through a handle is an integer-indexed add — no string
/// allocation or map lookup in per-record loops.
#[derive(Clone, Copy, Debug)]
pub struct CounterHandle(usize);

/// Interned counters: names registered once, values addressed by index.
#[derive(Default)]
pub(crate) struct InternedCounters {
    names: Vec<&'static str>,
    values: Vec<u64>,
}

impl InternedCounters {
    fn register(&mut self, name: &'static str) -> CounterHandle {
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            return CounterHandle(i);
        }
        self.names.push(name);
        self.values.push(0);
        CounterHandle(self.names.len() - 1)
    }

    #[inline]
    fn inc(&mut self, h: CounterHandle, delta: u64) {
        self.values[h.0] += delta;
    }

    /// Folds the interned values into the dynamic counter map (task end).
    fn fold_into(&self, counters: &mut BTreeMap<String, u64>) {
        for (name, v) in self.names.iter().zip(&self.values) {
            if *v > 0 {
                *counters.entry((*name).to_string()).or_insert(0) += v;
            }
        }
    }
}

/// Context given to a map function for one split.
///
/// A mapper can do two things with its results:
///
/// * [`MapContext::emit`] — send an intermediate `(key, value)` pair into
///   the shuffle toward the reducers, or
/// * [`MapContext::output`] — write a line of *final* output directly
///   (map-only jobs and the early-flush "pruning" steps of the enhanced
///   operations use this; in Hadoop terms, writing from the mapper to a
///   task-side output file committed with the job).
///
/// Emitted pairs are bucketed by reducer *at emit time*: each task hands
/// the driver per-reducer vectors, so the shuffle is a concatenation
/// instead of a single-threaded rehash of every pair.
pub struct MapContext<K, V> {
    pub(crate) buckets: Vec<Vec<(K, V)>>,
    pub(crate) output: Vec<String>,
    pub(crate) side: BTreeMap<String, Vec<String>>,
    pub(crate) side_bytes: BTreeMap<String, Vec<u8>>,
    pub(crate) counters: BTreeMap<String, u64>,
    interned: InternedCounters,
}

impl<K, V> MapContext<K, V> {
    /// `num_reducers` = 0 (map-only) still keeps one bucket so `emit`
    /// stays callable.
    pub(crate) fn new(num_reducers: usize) -> Self {
        MapContext {
            buckets: (0..num_reducers.max(1)).map(|_| Vec::new()).collect(),
            output: Vec::new(),
            side: BTreeMap::new(),
            side_bytes: BTreeMap::new(),
            counters: BTreeMap::new(),
            interned: InternedCounters::default(),
        }
    }

    /// Emits an intermediate pair into the shuffle, routed to its
    /// reducer's bucket immediately.
    #[inline]
    pub fn emit(&mut self, key: K, value: V)
    where
        K: Hash,
    {
        let b = if self.buckets.len() == 1 {
            0
        } else {
            bucket_of(&key, self.buckets.len())
        };
        self.buckets[b].push((key, value));
    }

    /// Total pairs emitted so far (diagnostics/tests).
    #[cfg(test)]
    pub(crate) fn emitted_len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Writes one line of final output from the map side.
    #[inline]
    pub fn output(&mut self, line: String) {
        self.output.push(line);
    }

    /// Writes one line into a *named side file* (`{output}/{name}`).
    /// Lines from all tasks writing the same name are concatenated in
    /// task order — the mechanism the index builder uses to write one
    /// file per spatial partition.
    pub fn side_output(&mut self, name: &str, line: String) {
        self.side.entry(name.to_string()).or_default().push(line);
    }

    /// Appends raw bytes to a *named binary side file* (`{output}/{name}`).
    /// The binary analogue of [`MapContext::side_output`]: chunks from all
    /// tasks writing the same name are concatenated in task order. A name
    /// must be either text or binary, never both.
    pub fn side_output_bytes(&mut self, name: &str, chunk: &[u8]) {
        self.side_bytes
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(chunk);
    }

    /// Adds to a named job counter.
    pub fn counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Registers a counter once; increments through the returned handle
    /// are allocation-free (use in per-record loops).
    pub fn register_counter(&mut self, name: &'static str) -> CounterHandle {
        self.interned.register(name)
    }

    /// Adds to a counter registered with [`MapContext::register_counter`].
    #[inline]
    pub fn inc(&mut self, h: CounterHandle, delta: u64) {
        self.interned.inc(h, delta);
    }

    /// All counters (dynamic + interned), consumed at task end.
    pub(crate) fn take_counters(&mut self) -> BTreeMap<String, u64> {
        let mut counters = std::mem::take(&mut self.counters);
        self.interned.fold_into(&mut counters);
        counters
    }
}

/// Context given to a reduce function for one key group.
pub struct ReduceContext {
    pub(crate) output: Vec<String>,
    pub(crate) side: BTreeMap<String, Vec<String>>,
    pub(crate) side_bytes: BTreeMap<String, Vec<u8>>,
    pub(crate) counters: BTreeMap<String, u64>,
    interned: InternedCounters,
}

impl ReduceContext {
    pub(crate) fn new() -> Self {
        ReduceContext {
            output: Vec::new(),
            side: BTreeMap::new(),
            side_bytes: BTreeMap::new(),
            counters: BTreeMap::new(),
            interned: InternedCounters::default(),
        }
    }

    /// Writes one line of final output.
    #[inline]
    pub fn output(&mut self, line: String) {
        self.output.push(line);
    }

    /// Writes one line into a *named side file* (see
    /// [`MapContext::side_output`]).
    pub fn side_output(&mut self, name: &str, line: String) {
        self.side.entry(name.to_string()).or_default().push(line);
    }

    /// Appends raw bytes to a *named binary side file* (see
    /// [`MapContext::side_output_bytes`]).
    pub fn side_output_bytes(&mut self, name: &str, chunk: &[u8]) {
        self.side_bytes
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(chunk);
    }

    /// Adds to a named job counter.
    pub fn counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Registers a counter once; increments through the returned handle
    /// are allocation-free (use in per-record loops).
    pub fn register_counter(&mut self, name: &'static str) -> CounterHandle {
        self.interned.register(name)
    }

    /// Adds to a counter registered with
    /// [`ReduceContext::register_counter`].
    #[inline]
    pub fn inc(&mut self, h: CounterHandle, delta: u64) {
        self.interned.inc(h, delta);
    }

    /// All counters (dynamic + interned), consumed at task end.
    pub(crate) fn take_counters(&mut self) -> BTreeMap<String, u64> {
        let mut counters = std::mem::take(&mut self.counters);
        self.interned.fold_into(&mut counters);
        counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_context_collects() {
        let mut ctx: MapContext<u32, String> = MapContext::new(0);
        ctx.emit(1, "a".into());
        ctx.output("final".into());
        ctx.counter("c", 2);
        ctx.counter("c", 1);
        assert_eq!(ctx.emitted_len(), 1);
        assert_eq!(ctx.output, vec!["final"]);
        assert_eq!(ctx.counters["c"], 3);
    }

    #[test]
    fn reduce_context_collects() {
        let mut ctx = ReduceContext::new();
        ctx.output("x".into());
        ctx.counter("k", 1);
        assert_eq!(ctx.output, vec!["x"]);
        assert_eq!(ctx.counters["k"], 1);
    }

    #[test]
    fn emit_buckets_pairs_by_reducer_hash() {
        let mut ctx: MapContext<u64, u64> = MapContext::new(4);
        for k in 0..100u64 {
            ctx.emit(k, k);
        }
        assert_eq!(ctx.emitted_len(), 100);
        for (b, bucket) in ctx.buckets.iter().enumerate() {
            for (k, _) in bucket {
                assert_eq!(bucket_of(k, 4), b, "pair must sit in its hash bucket");
            }
        }
    }

    #[test]
    fn interned_counters_merge_with_dynamic_ones() {
        let mut ctx: MapContext<u32, u32> = MapContext::new(1);
        let h = ctx.register_counter("hot.records");
        let h2 = ctx.register_counter("hot.records"); // same name, same slot
        for _ in 0..1000 {
            ctx.inc(h, 1);
        }
        ctx.inc(h2, 1);
        ctx.counter("hot.records", 5);
        ctx.counter("other", 2);
        let counters = ctx.take_counters();
        assert_eq!(counters["hot.records"], 1006);
        assert_eq!(counters["other"], 2);

        let mut rctx = ReduceContext::new();
        let rh = rctx.register_counter("red.groups");
        rctx.inc(rh, 3);
        assert_eq!(rctx.take_counters()["red.groups"], 3);
    }
}
