//! Task-side contexts handed to map and reduce functions.

use std::collections::BTreeMap;

/// Context given to a map function for one split.
///
/// A mapper can do two things with its results:
///
/// * [`MapContext::emit`] — send an intermediate `(key, value)` pair into
///   the shuffle toward the reducers, or
/// * [`MapContext::output`] — write a line of *final* output directly
///   (map-only jobs and the early-flush "pruning" steps of the enhanced
///   operations use this; in Hadoop terms, writing from the mapper to a
///   task-side output file committed with the job).
pub struct MapContext<K, V> {
    pub(crate) emitted: Vec<(K, V)>,
    pub(crate) output: Vec<String>,
    pub(crate) side: BTreeMap<String, Vec<String>>,
    pub(crate) counters: BTreeMap<String, u64>,
}

impl<K, V> MapContext<K, V> {
    pub(crate) fn new() -> Self {
        MapContext {
            emitted: Vec::new(),
            output: Vec::new(),
            side: BTreeMap::new(),
            counters: BTreeMap::new(),
        }
    }

    /// Emits an intermediate pair into the shuffle.
    #[inline]
    pub fn emit(&mut self, key: K, value: V) {
        self.emitted.push((key, value));
    }

    /// Writes one line of final output from the map side.
    #[inline]
    pub fn output(&mut self, line: String) {
        self.output.push(line);
    }

    /// Writes one line into a *named side file* (`{output}/{name}`).
    /// Lines from all tasks writing the same name are concatenated in
    /// task order — the mechanism the index builder uses to write one
    /// file per spatial partition.
    pub fn side_output(&mut self, name: &str, line: String) {
        self.side.entry(name.to_string()).or_default().push(line);
    }

    /// Adds to a named job counter.
    pub fn counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }
}

/// Context given to a reduce function for one key group.
pub struct ReduceContext {
    pub(crate) output: Vec<String>,
    pub(crate) side: BTreeMap<String, Vec<String>>,
    pub(crate) counters: BTreeMap<String, u64>,
}

impl ReduceContext {
    pub(crate) fn new() -> Self {
        ReduceContext {
            output: Vec::new(),
            side: BTreeMap::new(),
            counters: BTreeMap::new(),
        }
    }

    /// Writes one line of final output.
    #[inline]
    pub fn output(&mut self, line: String) {
        self.output.push(line);
    }

    /// Writes one line into a *named side file* (see
    /// [`MapContext::side_output`]).
    pub fn side_output(&mut self, name: &str, line: String) {
        self.side.entry(name.to_string()).or_default().push(line);
    }

    /// Adds to a named job counter.
    pub fn counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_context_collects() {
        let mut ctx: MapContext<u32, String> = MapContext::new();
        ctx.emit(1, "a".into());
        ctx.output("final".into());
        ctx.counter("c", 2);
        ctx.counter("c", 1);
        assert_eq!(ctx.emitted.len(), 1);
        assert_eq!(ctx.output, vec!["final"]);
        assert_eq!(ctx.counters["c"], 3);
    }

    #[test]
    fn reduce_context_collects() {
        let mut ctx = ReduceContext::new();
        ctx.output("x".into());
        ctx.counter("k", 1);
        assert_eq!(ctx.output, vec!["x"]);
        assert_eq!(ctx.counters["k"], 1);
    }
}
