//! Job execution: locality scheduling, threaded task waves, shuffle,
//! and cost aggregation.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sh_dfs::{Dfs, DfsError};
use sh_trace::{Histogram, JobProfile, PhaseProfile, Span};

use crate::context::{MapContext, ReduceContext};
use crate::cost::{makespan, shuffle_time, SimBreakdown, TaskCost};
use crate::counters::Counters;
use crate::job::{Job, JobError, Mapper, Reducer};

/// Result of a completed job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job name (diagnostics).
    pub name: String,
    /// Output directory holding `part-*` files.
    pub output: String,
    /// Final counters (engine + user).
    pub counters: BTreeMap<String, u64>,
    /// Simulated cluster time.
    pub sim: SimBreakdown,
    /// Real wall-clock execution time of the in-process run.
    pub wall: Duration,
    /// Number of map tasks executed.
    pub map_tasks: usize,
    /// Number of reduce tasks executed.
    pub reduce_tasks: usize,
    /// Full observability profile of the run: phase timings, per-task
    /// duration histograms, DFS/shuffle traffic, span tree. The ops layer
    /// fills in `profile.selectivity` after the run.
    pub profile: JobProfile,
}

impl JobOutcome {
    /// Reads every line of every output part file, in part order.
    pub fn read_output(&self, dfs: &Dfs) -> Result<Vec<String>, DfsError> {
        read_output_dir(dfs, &self.output)
    }

    /// Builds an outcome for driver-side phases that run outside the
    /// engine (e.g. a single-machine merge after a MapReduce round). The
    /// profile is synthesized from the supplied aggregates so downstream
    /// profile consumers see these phases too.
    pub fn synthetic(
        name: impl Into<String>,
        output: impl Into<String>,
        counters: BTreeMap<String, u64>,
        sim: SimBreakdown,
        wall: Duration,
        map_tasks: usize,
        reduce_tasks: usize,
    ) -> JobOutcome {
        let name = name.into();
        let mut profile = JobProfile::new(&name);
        profile.wall = wall;
        profile.sim_seconds = sim.total();
        for (phase, seconds, tasks) in [
            ("startup", sim.startup, 0),
            ("map", sim.map, map_tasks as u64),
            ("shuffle", sim.shuffle, 0),
            ("reduce", sim.reduce, reduce_tasks as u64),
        ] {
            let mut p = PhaseProfile::new(phase);
            p.sim_seconds = seconds;
            p.tasks = tasks;
            profile.phases.push(p);
        }
        profile.counters = counters.clone();
        JobOutcome {
            name,
            output: output.into(),
            counters,
            sim,
            wall,
            map_tasks,
            reduce_tasks,
            profile,
        }
    }
}

/// Reads all `part-*` files under an output directory.
pub fn read_output_dir(dfs: &Dfs, dir: &str) -> Result<Vec<String>, DfsError> {
    let mut lines = Vec::new();
    for path in dfs.list(&format!("{dir}/part-")) {
        let text = dfs.read_to_string(&path)?;
        lines.extend(text.lines().map(str::to_string));
    }
    Ok(lines)
}

struct MapTaskResult<K, V> {
    cost: TaskCost,
    pairs: Vec<(K, V)>,
    output: Vec<String>,
    side: BTreeMap<String, Vec<String>>,
    counters: BTreeMap<String, u64>,
}

/// Runs a configured job (called from [`Job::run`]).
pub(crate) fn run<M, R>(job: Job<M, R>) -> Result<JobOutcome, JobError>
where
    M: Mapper,
    R: Reducer<K = M::K, V = M::V>,
{
    let start = Instant::now();
    let dfs = job.dfs.clone();
    let cfg = dfs.config().clone();
    let counters = Counters::new();
    let span = Span::root(format!("job:{}", job.name));
    span.attr("splits", job.splits.len());
    span.attr(
        "reducers",
        job.reducer.as_ref().map(|_| job.num_reducers).unwrap_or(0),
    );

    // Hadoop semantics: refuse to run into a non-empty output directory
    // (prevents part files from different jobs from mixing).
    if !dfs.list(&format!("{}/part-", job.output)).is_empty() {
        return Err(JobError::Config(format!(
            "output directory {} already contains part files",
            job.output
        )));
    }

    // ---- schedule: assign each split to a node, locality first -------
    let assignments = assign_nodes(&job, cfg.num_nodes);

    // ---- map phase ----------------------------------------------------
    let n_tasks = job.splits.len();
    let map_span = span.child("map-wave");
    map_span.attr("tasks", n_tasks);
    let map_task_micros: Mutex<Histogram> = Mutex::new(Histogram::new());
    #[allow(clippy::type_complexity)]
    let results: Mutex<Vec<Option<MapTaskResult<M::K, M::V>>>> =
        Mutex::new((0..n_tasks).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
        .min(n_tasks.max(1));
    let failure: Mutex<Option<JobError>> = Mutex::new(None);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                let task_span = map_span.child(format!("map-{i}"));
                task_span.attr("node", assignments[i]);
                // Hadoop semantics: a panicking task fails the job, not
                // the process.
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_map_task(&job, i, assignments[i])
                }));
                task_span.finish();
                map_task_micros
                    .lock()
                    .observe(task_span.elapsed().as_micros() as u64);
                match attempt {
                    Ok(Ok(res)) => {
                        results.lock()[i] = Some(res);
                    }
                    Ok(Err(e)) => {
                        *failure.lock() = Some(JobError::Dfs(e));
                        break;
                    }
                    Err(panic) => {
                        *failure.lock() = Some(JobError::TaskFailed(format!(
                            "map task {i}: {}",
                            panic_message(&panic)
                        )));
                        break;
                    }
                }
            });
        }
    })
    .expect("map worker thread infrastructure failed");
    map_span.finish();
    if let Some(e) = failure.into_inner() {
        return Err(e);
    }
    if results.lock().iter().any(Option::is_none) {
        return Err(JobError::TaskFailed(
            "a map task was abandoned after another task failed".into(),
        ));
    }
    let mut map_results: Vec<MapTaskResult<M::K, M::V>> = results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all map tasks completed"))
        .collect();

    // ---- side files (named outputs shared across tasks) ---------------
    let mut side_files: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for res in map_results.iter_mut() {
        for (name, lines) in std::mem::take(&mut res.side) {
            let bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
            res.cost.output_bytes += bytes;
            side_files.entry(name).or_default().extend(lines);
        }
    }

    // ---- map-side final output (map-only jobs & early flush) ----------
    for (i, res) in map_results.iter_mut().enumerate() {
        if !res.output.is_empty() {
            let path = format!("{}/part-m-{i:05}", job.output);
            let mut w = dfs.create(&path)?;
            for line in &res.output {
                w.write_line(line);
            }
            w.close();
            let bytes: u64 = res.output.iter().map(|l| l.len() as u64 + 1).sum();
            res.cost.output_bytes += bytes;
            counters.inc_static("output.map.bytes", bytes);
        }
        counters.merge(&res.counters);
        counters.inc_static("map.input.bytes.local", res.cost.local_bytes);
        counters.inc_static("map.input.bytes.remote", res.cost.remote_bytes);
    }
    counters.inc_static("map.tasks", n_tasks as u64);

    let map_costs: Vec<TaskCost> = map_results.iter().map(|r| r.cost).collect();
    let map_makespan = makespan(&map_costs, &cfg, cfg.map_slots_per_node);

    // ---- shuffle -------------------------------------------------------
    let mut sim = SimBreakdown {
        startup: cfg.job_startup_overhead,
        map: map_makespan,
        shuffle: 0.0,
        reduce: 0.0,
    };

    let mut reduce_tasks_run = 0usize;
    let mut shuffle_pairs_total = 0u64;
    let mut shuffle_bytes_total = 0u64;
    let reduce_task_micros: Mutex<Histogram> = Mutex::new(Histogram::new());
    if let Some(reducer) = &job.reducer {
        let shuffle_span = span.child("shuffle");
        let r = job.num_reducers;
        let mut buckets: Vec<Vec<(M::K, M::V)>> = (0..r).map(|_| Vec::new()).collect();
        let mut shuffle_bytes = 0u64;
        let mut shuffle_pairs = 0u64;
        for res in map_results.iter_mut() {
            for (k, v) in res.pairs.drain(..) {
                shuffle_bytes += (job.pair_size)(&k, &v) as u64;
                shuffle_pairs += 1;
                let b = bucket_of(&k, r);
                buckets[b].push((k, v));
            }
        }
        counters.inc_static("shuffle.pairs", shuffle_pairs);
        counters.inc_static("shuffle.bytes", shuffle_bytes);
        shuffle_pairs_total = shuffle_pairs;
        shuffle_bytes_total = shuffle_bytes;
        sim.shuffle = shuffle_time(shuffle_bytes, &cfg);
        shuffle_span.attr("pairs", shuffle_pairs);
        shuffle_span.attr("bytes", shuffle_bytes);
        shuffle_span.finish();

        // ---- reduce phase ---------------------------------------------
        let reduce_span = span.child("reduce-wave");
        reduce_span.attr("tasks", r);
        let reduce_results: Mutex<Vec<Option<ReduceTaskResult>>> =
            Mutex::new((0..r).map(|_| None).collect());
        let next_r = AtomicUsize::new(0);
        let buckets_ref = &buckets;
        let reduce_failure: Mutex<Option<JobError>> = Mutex::new(None);
        crossbeam::scope(|scope| {
            for _ in 0..threads.min(r.max(1)) {
                scope.spawn(|_| loop {
                    let i = next_r.fetch_add(1, Ordering::Relaxed);
                    if i >= r {
                        break;
                    }
                    let task_span = reduce_span.child(format!("reduce-{i}"));
                    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_reduce_task::<M, R>(reducer, &buckets_ref[i], i, &cfg)
                    }));
                    task_span.finish();
                    reduce_task_micros
                        .lock()
                        .observe(task_span.elapsed().as_micros() as u64);
                    match attempt {
                        Ok(res) => {
                            reduce_results.lock()[i] = Some(res);
                        }
                        Err(panic) => {
                            *reduce_failure.lock() = Some(JobError::TaskFailed(format!(
                                "reduce task {i}: {}",
                                panic_message(&panic)
                            )));
                            break;
                        }
                    }
                });
            }
        })
        .expect("reduce worker thread infrastructure failed");
        reduce_span.finish();
        if let Some(e) = reduce_failure.into_inner() {
            return Err(e);
        }

        let mut reduce_costs: Vec<TaskCost> = Vec::with_capacity(r);
        for (i, res) in reduce_results.into_inner().into_iter().enumerate() {
            let (mut cost, output, side, task_counters) = res.expect("reduce task completed");
            for (name, lines) in side {
                let bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
                cost.output_bytes += bytes;
                side_files.entry(name).or_default().extend(lines);
            }
            if !output.is_empty() {
                let path = format!("{}/part-r-{i:05}", job.output);
                let mut w = dfs.create(&path)?;
                for line in &output {
                    w.write_line(line);
                }
                w.close();
                let bytes: u64 = output.iter().map(|l| l.len() as u64 + 1).sum();
                cost.output_bytes += bytes;
                counters.inc_static("output.reduce.bytes", bytes);
            }
            counters.merge(&task_counters);
            reduce_costs.push(cost);
            reduce_tasks_run += 1;
        }
        sim.reduce = makespan(&reduce_costs, &cfg, cfg.reduce_slots_per_node);
        counters.inc_static("reduce.tasks", reduce_tasks_run as u64);
    }

    // Side files are written last so reduce-side side outputs are merged
    // in too.
    for (name, lines) in side_files {
        let path = format!("{}/{name}", job.output);
        let mut w = dfs.create(&path)?;
        for line in &lines {
            w.write_line(line);
        }
        w.close();
        counters.inc_static(
            "output.side.bytes",
            lines.iter().map(|l| l.len() as u64 + 1).sum(),
        );
    }

    span.finish();
    let counters = counters.snapshot();
    let profile = build_profile(
        &job.name,
        start.elapsed(),
        &sim,
        &counters,
        &map_costs,
        n_tasks,
        reduce_tasks_run,
        map_task_micros.into_inner(),
        reduce_task_micros.into_inner(),
        shuffle_pairs_total,
        shuffle_bytes_total,
        span.record(),
    );

    Ok(JobOutcome {
        name: job.name,
        output: job.output,
        counters,
        sim,
        wall: start.elapsed(),
        map_tasks: n_tasks,
        reduce_tasks: reduce_tasks_run,
        profile,
    })
}

/// Assembles the job's [`JobProfile`] and rolls process-lifetime totals
/// into the global trace registry (`job.*` keys).
#[allow(clippy::too_many_arguments)]
fn build_profile(
    name: &str,
    wall: Duration,
    sim: &SimBreakdown,
    counters: &BTreeMap<String, u64>,
    map_costs: &[TaskCost],
    map_tasks: usize,
    reduce_tasks: usize,
    map_task_micros: Histogram,
    reduce_task_micros: Histogram,
    shuffle_pairs: u64,
    shuffle_bytes: u64,
    spans: sh_trace::SpanRecord,
) -> JobProfile {
    let registry = sh_trace::global();
    registry.counter_add("job.completed", 1);
    registry.counter_add("job.map.tasks", map_tasks as u64);
    registry.counter_add("job.reduce.tasks", reduce_tasks as u64);
    registry.counter_add("job.shuffle.pairs", shuffle_pairs);
    registry.counter_add("job.shuffle.bytes", shuffle_bytes);
    registry.observe("job.wall.micros", wall.as_micros() as u64);
    registry.observe_histogram("job.map.task.micros", &map_task_micros);
    registry.observe_histogram("job.reduce.task.micros", &reduce_task_micros);

    let mut profile = JobProfile::new(name);
    profile.wall = wall;
    profile.sim_seconds = sim.total();
    let mut startup = PhaseProfile::new("startup");
    startup.sim_seconds = sim.startup;
    let mut map = PhaseProfile::new("map");
    map.sim_seconds = sim.map;
    map.tasks = map_tasks as u64;
    map.task_micros = map_task_micros;
    let mut shuffle = PhaseProfile::new("shuffle");
    shuffle.sim_seconds = sim.shuffle;
    let mut reduce = PhaseProfile::new("reduce");
    reduce.sim_seconds = sim.reduce;
    reduce.tasks = reduce_tasks as u64;
    reduce.task_micros = reduce_task_micros;
    profile.phases = vec![startup, map, shuffle, reduce];
    profile.dfs_local_bytes = map_costs.iter().map(|c| c.local_bytes).sum();
    profile.dfs_remote_bytes = map_costs.iter().map(|c| c.remote_bytes).sum();
    profile.dfs_bytes_written = counters.get("output.map.bytes").copied().unwrap_or(0)
        + counters.get("output.reduce.bytes").copied().unwrap_or(0)
        + counters.get("output.side.bytes").copied().unwrap_or(0);
    profile.shuffle_pairs = shuffle_pairs;
    profile.shuffle_bytes = shuffle_bytes;
    profile.counters = counters.clone();
    profile.spans = Some(spans);
    profile
}

/// Locality-aware greedy assignment of splits to nodes: each split goes
/// to its least-loaded replica holder; load is balanced in bytes.
fn assign_nodes<M: Mapper, R: Reducer<K = M::K, V = M::V>>(
    job: &Job<M, R>,
    num_nodes: usize,
) -> Vec<usize> {
    let mut load = vec![0u64; num_nodes.max(1)];
    let mut order: Vec<usize> = (0..job.splits.len()).collect();
    // Place big splits first (LPT-style) for better balance.
    order.sort_by_key(|&i| std::cmp::Reverse(job.splits[i].len()));
    let locality = job.dfs.config().locality_scheduling;
    let mut assignment = vec![0usize; job.splits.len()];
    for i in order {
        let split = &job.splits[i];
        let preferred = split.preferred_nodes();
        let node = if locality {
            preferred
                .iter()
                .copied()
                .min_by_key(|&n| load[n % load.len()])
                .unwrap_or_else(|| {
                    (0..load.len())
                        .min_by_key(|&n| load[n])
                        .expect("at least one node")
                })
        } else {
            // Locality-blind: pure load balancing, ignoring replicas.
            (0..load.len())
                .min_by_key(|&n| load[n])
                .expect("at least one node")
        };
        let node = node % load.len();
        load[node] += split.len().max(1);
        assignment[i] = node;
    }
    assignment
}

fn run_map_task<M, R>(
    job: &Job<M, R>,
    task: usize,
    node: usize,
) -> Result<MapTaskResult<M::K, M::V>, DfsError>
where
    M: Mapper,
    R: Reducer<K = M::K, V = M::V>,
{
    let split = &job.splits[task];
    let mut local = 0u64;
    let mut remote = 0u64;
    let mut data = String::with_capacity(split.len() as usize);
    for b in &split.blocks {
        let (bytes, was_local) = job.dfs.read_block(b.id, node)?;
        if was_local {
            local += bytes.len() as u64;
        } else {
            remote += bytes.len() as u64;
        }
        data.push_str(std::str::from_utf8(&bytes).expect("DFS stores UTF-8 text"));
    }
    let mut ctx = MapContext::new();
    let t0 = Instant::now();
    job.mapper.map(split, &data, &mut ctx);
    let mut pairs = ctx.emitted;
    if let Some(combiner) = &job.combiner {
        pairs = apply_combiner(pairs, combiner);
    }
    let compute = t0.elapsed().as_secs_f64();
    Ok(MapTaskResult {
        cost: TaskCost {
            node,
            local_bytes: local,
            remote_bytes: remote,
            output_bytes: 0,
            compute_seconds: compute,
        },
        pairs,
        output: ctx.output,
        side: ctx.side,
        counters: ctx.counters,
    })
}

fn apply_combiner<K: Clone + Ord + Hash + Send, V: Clone + Send>(
    mut pairs: Vec<(K, V)>,
    combiner: &crate::job::CombinerFn<K, V>,
) -> Vec<(K, V)> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(K, V)> = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let key = pairs[i].0.clone();
        let values: Vec<V> = pairs[i..j].iter().map(|(_, v)| v.clone()).collect();
        for v in combiner(&key, values) {
            out.push((key.clone(), v));
        }
        i = j;
    }
    out
}

type ReduceTaskResult = (
    TaskCost,
    Vec<String>,
    BTreeMap<String, Vec<String>>,
    BTreeMap<String, u64>,
);

fn run_reduce_task<M, R>(
    reducer: &R,
    bucket: &[(M::K, M::V)],
    task: usize,
    cfg: &sh_dfs::ClusterConfig,
) -> ReduceTaskResult
where
    M: Mapper,
    R: Reducer<K = M::K, V = M::V>,
{
    let node = task % cfg.num_nodes.max(1);
    // Sort/group phase: stable sort keeps map-task emission order within
    // a key, so results are deterministic.
    let mut pairs: Vec<(M::K, M::V)> = bucket.to_vec();
    let t0 = Instant::now();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut ctx = ReduceContext::new();
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let key = pairs[i].0.clone();
        let values: Vec<M::V> = pairs[i..j].iter().map(|(_, v)| v.clone()).collect();
        reducer.reduce(&key, values, &mut ctx);
        i = j;
    }
    let compute = t0.elapsed().as_secs_f64();
    (
        TaskCost {
            node,
            local_bytes: 0,
            remote_bytes: 0,
            output_bytes: 0,
            compute_seconds: compute,
        },
        ctx.output,
        ctx.side,
        ctx.counters,
    )
}

/// Best-effort extraction of a panic payload message.
fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Deterministic key → reducer bucket (fixed-seed hasher, stable across
/// processes and runs).
fn bucket_of<K: Hash>(key: &K, buckets: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % buckets as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBuilder;
    use crate::split::InputSplit;
    use sh_dfs::ClusterConfig;

    struct CountMapper;
    impl Mapper for CountMapper {
        type K = String;
        type V = u64;
        fn map(&self, _s: &InputSplit, data: &str, ctx: &mut MapContext<String, u64>) {
            for token in data.split_whitespace() {
                ctx.emit(token.to_string(), 1);
            }
            ctx.counter("user.records", data.lines().count() as u64);
        }
    }

    struct SumReducer;
    impl Reducer for SumReducer {
        type K = String;
        type V = u64;
        fn reduce(&self, k: &String, vs: Vec<u64>, ctx: &mut ReduceContext) {
            ctx.output(format!("{k} {}", vs.iter().sum::<u64>()));
        }
    }

    fn dfs() -> Dfs {
        Dfs::new(ClusterConfig::small_for_tests())
    }

    fn wordcount_input(fs: &Dfs, lines: usize) {
        let mut w = fs.create("/in").unwrap();
        for i in 0..lines {
            w.write_line(&format!("w{} common", i % 10));
        }
        w.close();
    }

    #[test]
    fn wordcount_end_to_end() {
        let fs = dfs();
        wordcount_input(&fs, 5000); // multiple blocks
        let outcome = JobBuilder::new(&fs, "wc")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 3)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(outcome.map_tasks > 1, "expected multiple splits");
        assert_eq!(outcome.reduce_tasks, 3);
        let mut lines = outcome.read_output(&fs).unwrap();
        lines.sort();
        assert_eq!(lines.len(), 11); // w0..w9 + common
        assert!(lines.contains(&"common 5000".to_string()));
        assert!(lines.contains(&"w0 500".to_string()));
        assert_eq!(outcome.counters["user.records"], 5000);
        assert_eq!(outcome.counters["shuffle.pairs"], 10_000);
        assert!(outcome.sim.total() > 0.0);
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        let fs = dfs();
        wordcount_input(&fs, 5000);
        let without = JobBuilder::new(&fs, "wc")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 2)
            .output("/out1")
            .build()
            .unwrap()
            .run()
            .unwrap();
        let with = JobBuilder::new(&fs, "wc-comb")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .combiner(|_k, vs: Vec<u64>| vec![vs.iter().sum()])
            .reducer(SumReducer, 2)
            .output("/out2")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(with.counters["shuffle.pairs"] < without.counters["shuffle.pairs"]);
        let mut a = without.read_output(&fs).unwrap();
        let mut b = with.read_output(&fs).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "combiner must not change results");
    }

    struct PassthroughMapper;
    impl Mapper for PassthroughMapper {
        type K = u32;
        type V = u32;
        fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u32, u32>) {
            for line in data.lines() {
                ctx.output(format!("{}:{}", split.tag, line));
            }
        }
    }

    #[test]
    fn map_only_job_writes_map_output() {
        let fs = dfs();
        fs.write_string("/in", "a\nb\n").unwrap();
        let outcome = JobBuilder::new(&fs, "identity")
            .input_file("/in")
            .unwrap()
            .mapper(PassthroughMapper)
            .output("/out")
            .map_only()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.reduce_tasks, 0);
        let mut lines = outcome.read_output(&fs).unwrap();
        lines.sort();
        assert_eq!(lines, vec!["0:a", "0:b"]);
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let fs = dfs();
            wordcount_input(&fs, 3000);
            let outcome = JobBuilder::new(&fs, "wc")
                .input_file("/in")
                .unwrap()
                .mapper(CountMapper)
                .reducer(SumReducer, 4)
                .output("/out")
                .build()
                .unwrap()
                .run()
                .unwrap();
            outcome.read_output(&fs).unwrap()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn input_byte_accounting_balances() {
        let fs = dfs();
        wordcount_input(&fs, 4000);
        let file_len = fs.stat("/in").unwrap().len;
        let outcome = JobBuilder::new(&fs, "account")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 2)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        // A full scan reads every input byte exactly once (local +
        // remote partition of the same total).
        assert_eq!(
            outcome.counters["map.input.bytes.local"] + outcome.counters["map.input.bytes.remote"],
            file_len
        );
        // Shuffle pairs equal total tokens (2 per line).
        assert_eq!(outcome.counters["shuffle.pairs"], 8000);
    }

    #[test]
    fn concurrent_jobs_on_one_dfs_are_safe() {
        let fs = dfs();
        wordcount_input(&fs, 2000);
        let run = |out: &str| {
            JobBuilder::new(&fs, "concurrent")
                .input_file("/in")
                .unwrap()
                .mapper(CountMapper)
                .reducer(SumReducer, 2)
                .output(out)
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let (a, b) = std::thread::scope(|scope| {
            let ha = scope.spawn(|| run("/out-a"));
            let hb = scope.spawn(|| run("/out-b"));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        let mut la = a.read_output(&fs).unwrap();
        let mut lb = b.read_output(&fs).unwrap();
        la.sort();
        lb.sort();
        assert_eq!(la, lb);
        assert!(la.contains(&"common 2000".to_string()));
    }

    #[test]
    fn missing_input_is_an_error() {
        let fs = dfs();
        assert!(matches!(
            JobBuilder::<CountMapper>::new(&fs, "x").input_file("/nope"),
            Err(JobError::Config(_)) | Err(JobError::Dfs(_))
        ));
    }

    #[test]
    fn zero_reducers_rejected() {
        let fs = dfs();
        fs.write_string("/in", "a\n").unwrap();
        let err = JobBuilder::new(&fs, "x")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 0)
            .output("/o")
            .build();
        assert!(matches!(err, Err(JobError::Config(_))));
    }

    #[test]
    fn sim_time_includes_startup_and_scales_with_input() {
        let fs = dfs();
        wordcount_input(&fs, 500);
        let small = JobBuilder::new(&fs, "s")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 1)
            .output("/o1")
            .build()
            .unwrap()
            .run()
            .unwrap();
        let fs2 = dfs();
        wordcount_input(&fs2, 50_000);
        let big = JobBuilder::new(&fs2, "b")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 1)
            .output("/o2")
            .build()
            .unwrap()
            .run()
            .unwrap();
        let cfg = ClusterConfig::small_for_tests();
        assert!(small.sim.startup == cfg.job_startup_overhead);
        assert!(big.sim.total() > small.sim.total());
    }

    struct PanickingMapper;
    impl Mapper for PanickingMapper {
        type K = u8;
        type V = u8;
        fn map(&self, _s: &InputSplit, data: &str, _ctx: &mut MapContext<u8, u8>) {
            if data.contains("poison") {
                panic!("corrupt record encountered");
            }
        }
    }

    #[test]
    fn map_task_panic_fails_the_job_not_the_process() {
        let fs = dfs();
        fs.write_string("/in", "fine\npoison\n").unwrap();
        let err = JobBuilder::new(&fs, "poisoned")
            .input_file("/in")
            .unwrap()
            .mapper(PanickingMapper)
            .output("/o")
            .map_only()
            .unwrap()
            .run();
        match err {
            Err(JobError::TaskFailed(msg)) => {
                assert!(msg.contains("corrupt record"), "{msg}")
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    struct PanickingReducer;
    impl Reducer for PanickingReducer {
        type K = u8;
        type V = u8;
        fn reduce(&self, _k: &u8, _vs: Vec<u8>, _ctx: &mut ReduceContext) {
            panic!("reducer exploded");
        }
    }

    struct EmitOneMapper;
    impl Mapper for EmitOneMapper {
        type K = u8;
        type V = u8;
        fn map(&self, _s: &InputSplit, _d: &str, ctx: &mut MapContext<u8, u8>) {
            ctx.emit(1, 1);
        }
    }

    #[test]
    fn reduce_task_panic_fails_the_job_not_the_process() {
        let fs = dfs();
        fs.write_string("/in", "x\n").unwrap();
        let err = JobBuilder::new(&fs, "boom")
            .input_file("/in")
            .unwrap()
            .mapper(EmitOneMapper)
            .reducer(PanickingReducer, 1)
            .output("/o")
            .build()
            .unwrap()
            .run();
        assert!(matches!(err, Err(JobError::TaskFailed(_))), "{err:?}");
    }

    #[test]
    fn node_failure_fails_job_cleanly() {
        let fs = dfs();
        wordcount_input(&fs, 100);
        // Kill every node: reads must fail, job returns Dfs error.
        for n in 0..fs.config().num_nodes {
            fs.kill_node(n);
        }
        let err = JobBuilder::new(&fs, "dead")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 1)
            .output("/o")
            .build()
            .unwrap()
            .run();
        assert!(matches!(err, Err(JobError::Dfs(_))));
    }

    struct AuxEchoMapper;
    impl Mapper for AuxEchoMapper {
        type K = u8;
        type V = u8;
        fn map(&self, split: &InputSplit, _data: &str, ctx: &mut MapContext<u8, u8>) {
            ctx.output(format!(
                "{}:{}",
                split.partition_id.unwrap_or(999),
                split.aux.as_deref().unwrap_or("-")
            ));
        }
    }

    #[test]
    fn splits_carry_partition_metadata_and_aux_to_mappers() {
        let fs = dfs();
        fs.write_string("/in", "x\n").unwrap();
        let split = crate::split::InputSplit::whole_file(&fs, "/in")
            .unwrap()
            .with_partition(7, [0.0, 0.0, 1.0, 1.0])
            .with_aux("payload 42".into());
        let outcome = JobBuilder::new(&fs, "aux")
            .input_splits(vec![split])
            .mapper(AuxEchoMapper)
            .output("/out")
            .map_only()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.read_output(&fs).unwrap(), vec!["7:payload 42"]);
    }

    struct SideMapper;
    impl Mapper for SideMapper {
        type K = u8;
        type V = u64;
        fn map(&self, _s: &InputSplit, data: &str, ctx: &mut MapContext<u8, u64>) {
            for line in data.lines() {
                ctx.side_output("spill", format!("m:{line}"));
                ctx.emit(1, line.len() as u64);
            }
        }
    }

    struct SideReducer;
    impl Reducer for SideReducer {
        type K = u8;
        type V = u64;
        fn reduce(&self, _k: &u8, vs: Vec<u64>, ctx: &mut ReduceContext) {
            ctx.side_output("spill", format!("r:{}", vs.len()));
            ctx.output(format!("{}", vs.iter().sum::<u64>()));
        }
    }

    #[test]
    fn side_files_merge_map_and_reduce_contributions() {
        let fs = dfs();
        fs.write_string("/in", "aa\nbbb\n").unwrap();
        let outcome = JobBuilder::new(&fs, "side")
            .input_file("/in")
            .unwrap()
            .mapper(SideMapper)
            .reducer(SideReducer, 1)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.read_output(&fs).unwrap(), vec!["5"]);
        let spill = fs.read_to_string("/out/spill").unwrap();
        let mut lines: Vec<&str> = spill.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["m:aa", "m:bbb", "r:2"]);
    }

    #[test]
    fn output_collision_is_rejected() {
        let fs = dfs();
        fs.write_string("/in", "a\n").unwrap();
        let run = |out: &str| {
            JobBuilder::new(&fs, "c")
                .input_file("/in")
                .unwrap()
                .mapper(PassthroughMapper)
                .output(out)
                .map_only()
                .unwrap()
                .run()
        };
        run("/dup").unwrap();
        assert!(matches!(run("/dup"), Err(JobError::Config(_))));
    }

    #[test]
    fn outcome_carries_a_complete_profile() {
        let fs = dfs();
        wordcount_input(&fs, 5000);
        let outcome = JobBuilder::new(&fs, "profiled")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 3)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        let p = &outcome.profile;
        assert_eq!(p.job, "profiled");
        assert!(p.sim_seconds > 0.0);
        let map = p.phase("map").unwrap();
        assert_eq!(map.tasks, outcome.map_tasks as u64);
        assert_eq!(map.task_micros.count(), outcome.map_tasks as u64);
        let reduce = p.phase("reduce").unwrap();
        assert_eq!(reduce.tasks, 3);
        assert_eq!(reduce.task_micros.count(), 3);
        assert_eq!(
            p.dfs_local_bytes + p.dfs_remote_bytes,
            fs.stat("/in").unwrap().len
        );
        assert_eq!(p.shuffle_pairs, outcome.counters["shuffle.pairs"]);
        assert!(p.dfs_bytes_written > 0);
        assert_eq!(p.counters, outcome.counters);
        // Span tree: root job span with map-wave/shuffle/reduce-wave
        // children, and one span per task.
        let spans = p.spans.as_ref().unwrap();
        assert_eq!(spans.name, "job:profiled");
        let wave = spans.find("map-wave").unwrap();
        assert_eq!(wave.children.len(), outcome.map_tasks);
        assert!(spans.find("shuffle").is_some());
        assert_eq!(spans.find("reduce-wave").unwrap().children.len(), 3);
        // JSON export of a real profile round-trips.
        let back = sh_trace::JobProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(&back, p);
    }

    #[test]
    fn job_survives_single_node_failure() {
        let fs = dfs();
        wordcount_input(&fs, 2000);
        fs.kill_node(0);
        let outcome = JobBuilder::new(&fs, "one-dead")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 2)
            .output("/o")
            .build()
            .unwrap()
            .run()
            .unwrap();
        let mut lines = outcome.read_output(&fs).unwrap();
        lines.sort();
        assert!(lines.contains(&"common 2000".to_string()));
    }
}
