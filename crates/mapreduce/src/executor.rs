//! Job execution: locality scheduling, fault-tolerant task waves
//! (retries, node blacklisting, speculative execution), shuffle, and
//! cost aggregation.

use std::collections::{BTreeMap, VecDeque};
use std::hash::Hash;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use sh_dfs::{Dfs, DfsError, FaultPlan, FtOptions};
use sh_trace::{Histogram, JobProfile, PhaseProfile, Span};

use crate::context::{MapContext, ReduceContext};
use crate::cost::{makespan, shuffle_time, SimBreakdown, TaskCost};
use crate::counters::Counters;
use crate::job::{Job, JobError, Mapper, Reducer};

/// Result of a completed job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job name (diagnostics).
    pub name: String,
    /// Output directory holding `part-*` files.
    pub output: String,
    /// Final counters (engine + user).
    pub counters: BTreeMap<String, u64>,
    /// Simulated cluster time.
    pub sim: SimBreakdown,
    /// Real wall-clock execution time of the in-process run.
    pub wall: Duration,
    /// Number of map tasks executed.
    pub map_tasks: usize,
    /// Number of reduce tasks executed.
    pub reduce_tasks: usize,
    /// Full observability profile of the run: phase timings, per-task
    /// duration histograms, DFS/shuffle traffic, span tree. The ops layer
    /// fills in `profile.selectivity` after the run.
    pub profile: JobProfile,
}

impl JobOutcome {
    /// Reads every line of every output part file, in part order.
    pub fn read_output(&self, dfs: &Dfs) -> Result<Vec<String>, DfsError> {
        read_output_dir(dfs, &self.output)
    }

    /// Builds an outcome for driver-side phases that run outside the
    /// engine (e.g. a single-machine merge after a MapReduce round). The
    /// profile is synthesized from the supplied aggregates so downstream
    /// profile consumers see these phases too.
    pub fn synthetic(
        name: impl Into<String>,
        output: impl Into<String>,
        counters: BTreeMap<String, u64>,
        sim: SimBreakdown,
        wall: Duration,
        map_tasks: usize,
        reduce_tasks: usize,
    ) -> JobOutcome {
        let name = name.into();
        let mut profile = JobProfile::new(&name);
        profile.wall = wall;
        profile.sim_seconds = sim.total();
        for (phase, seconds, tasks) in [
            ("startup", sim.startup, 0),
            ("map", sim.map, map_tasks as u64),
            ("shuffle", sim.shuffle, 0),
            ("reduce", sim.reduce, reduce_tasks as u64),
        ] {
            let mut p = PhaseProfile::new(phase);
            p.sim_seconds = seconds;
            p.tasks = tasks;
            profile.phases.push(p);
        }
        profile.counters = counters.clone();
        JobOutcome {
            name,
            output: output.into(),
            counters,
            sim,
            wall,
            map_tasks,
            reduce_tasks,
            profile,
        }
    }
}

/// Reads all `part-*` files under an output directory.
pub fn read_output_dir(dfs: &Dfs, dir: &str) -> Result<Vec<String>, DfsError> {
    let mut lines = Vec::new();
    for path in dfs.list(&format!("{dir}/part-")) {
        let text = dfs.read_to_string(&path)?;
        lines.extend(text.lines().map(str::to_string));
    }
    Ok(lines)
}

struct MapTaskResult<K, V> {
    cost: TaskCost,
    /// Emitted pairs, already partitioned per reducer at emit time. The
    /// driver's shuffle concatenates these bucket-wise in task order —
    /// no per-pair rehash on the single-threaded path.
    buckets: Vec<Vec<(K, V)>>,
    /// Post-combiner pair count/bytes, tallied task-side.
    shuffle_pairs: u64,
    shuffle_bytes: u64,
    output: Vec<String>,
    side: BTreeMap<String, Vec<String>>,
    side_bytes: BTreeMap<String, Vec<u8>>,
    counters: BTreeMap<String, u64>,
}

// ---------------------------------------------------------------------
// Fault-tolerant wave scheduler
// ---------------------------------------------------------------------

/// Fault-tolerance tallies of one task wave.
#[derive(Clone, Copy, Debug, Default)]
struct FtStats {
    /// Attempts launched (first runs + retries + speculative backups).
    attempts: u64,
    /// Re-attempts queued after a failed attempt.
    retries: u64,
    /// Speculative backup attempts launched for stragglers.
    speculative_launched: u64,
    /// Speculative backups that finished first and won their task.
    speculative_won: u64,
    /// Nodes blacklisted after repeated failures.
    nodes_blacklisted: u64,
}

impl FtStats {
    fn absorb(&mut self, o: FtStats) {
        self.attempts += o.attempts;
        self.retries += o.retries;
        self.speculative_launched += o.speculative_launched;
        self.speculative_won += o.speculative_won;
        self.nodes_blacklisted += o.nodes_blacklisted;
    }
}

/// Per-task bookkeeping inside a wave.
#[derive(Clone, Debug, Default)]
struct TaskState {
    /// Attempts launched so far (also the next attempt's number).
    attempts: usize,
    /// Attempts currently in flight.
    running: usize,
    /// Nodes with an in-flight attempt of this task.
    active_nodes: Vec<usize>,
    /// Nodes where an attempt of this task failed (never reused).
    failed_nodes: Vec<usize>,
    /// First result installed — later finishers are discarded.
    done: bool,
    /// A speculative backup was already launched.
    speculated: bool,
    /// Launch time of the earliest attempt (straggler detection).
    first_started: Option<Instant>,
}

struct WaveState {
    /// Tasks awaiting a (re)attempt.
    queue: VecDeque<usize>,
    tasks: Vec<TaskState>,
    /// Failed attempts per node, across all tasks of the wave.
    node_failures: BTreeMap<usize, u64>,
    /// Nodes the wave no longer schedules onto.
    blacklist: Vec<usize>,
    /// Tasks without an installed result.
    remaining: usize,
    /// First task to exhaust its attempt budget fails the job; later
    /// failures never overwrite this.
    fatal: Option<JobError>,
    stats: FtStats,
}

enum Work {
    Run {
        task: usize,
        attempt: usize,
        node: usize,
        speculative: bool,
    },
    Wait,
    Exit,
}

/// Hadoop-shaped fault-tolerant execution of one wave of tasks: a failed
/// attempt is retried (with deterministic backoff) on another live
/// replica node, nodes that keep failing are blacklisted (triggering DFS
/// re-replication), and once the queue drains a straggling task gets a
/// speculative duplicate — first finisher wins, the loser is cancelled.
struct WaveRunner<'a, T> {
    dfs: &'a Dfs,
    opts: &'a FtOptions,
    /// Fault injection (map waves only — `None` disables).
    plan: Option<&'a FaultPlan>,
    wave_span: &'a Span,
    /// Task-name prefix in spans: `map` or `reduce`.
    phase: &'a str,
    /// Scheduler's preferred node per task (attempt 0).
    assignments: &'a [usize],
    /// Replica holders per task, in preference order for retries.
    replicas: Vec<Vec<usize>>,
    state: Mutex<WaveState>,
    cv: Condvar,
    results: Mutex<Vec<Option<T>>>,
    task_micros: Mutex<Histogram>,
}

impl<'a, T: Send> WaveRunner<'a, T> {
    fn new(
        dfs: &'a Dfs,
        opts: &'a FtOptions,
        plan: Option<&'a FaultPlan>,
        wave_span: &'a Span,
        phase: &'a str,
        assignments: &'a [usize],
        replicas: Vec<Vec<usize>>,
    ) -> WaveRunner<'a, T> {
        let n = assignments.len();
        WaveRunner {
            dfs,
            opts,
            plan,
            wave_span,
            phase,
            assignments,
            replicas,
            state: Mutex::new(WaveState {
                queue: (0..n).collect(),
                tasks: vec![TaskState::default(); n],
                node_failures: BTreeMap::new(),
                blacklist: Vec::new(),
                remaining: n,
                fatal: None,
                stats: FtStats::default(),
            }),
            cv: Condvar::new(),
            results: Mutex::new((0..n).map(|_| None).collect()),
            task_micros: Mutex::new(Histogram::new()),
        }
    }

    /// Runs the wave on `threads` workers; returns results in task order
    /// plus the wave's fault-tolerance tallies and task-duration
    /// histogram (winning attempts only).
    fn run<F>(self, threads: usize, run_task: F) -> Result<(Vec<T>, FtStats, Histogram), JobError>
    where
        F: Fn(usize, usize) -> Result<T, JobError> + Sync,
    {
        let run_task = &run_task;
        let me = &self;
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(move |_| me.worker(run_task));
            }
        })
        .expect("wave worker thread infrastructure failed");
        let state = self.state.into_inner().expect("wave state poisoned");
        if let Some(e) = state.fatal {
            return Err(e);
        }
        let results = self
            .results
            .into_inner()
            .expect("wave results poisoned")
            .into_iter()
            .map(|r| r.expect("wave completed without a fatal error"))
            .collect();
        let micros = self.task_micros.into_inner().expect("histogram poisoned");
        Ok((results, state.stats, micros))
    }

    fn worker<F>(&self, run_task: &F)
    where
        F: Fn(usize, usize) -> Result<T, JobError> + Sync,
    {
        loop {
            match self.next_work() {
                Work::Exit => break,
                Work::Wait => {
                    let st = self.state.lock().unwrap();
                    if st.fatal.is_some() || st.remaining == 0 {
                        break;
                    }
                    // Periodic wake keeps the straggler clock honest.
                    let _ = self.cv.wait_timeout(st, Duration::from_millis(2)).unwrap();
                }
                Work::Run {
                    task,
                    attempt,
                    node,
                    speculative,
                } => self.execute(task, attempt, node, speculative, run_task),
            }
        }
    }

    /// Claims the next attempt. Workers stop claiming the moment a
    /// fatal failure is recorded.
    fn next_work(&self) -> Work {
        let mut st = self.state.lock().unwrap();
        if st.fatal.is_some() || st.remaining == 0 {
            return Work::Exit;
        }
        if let Some(task) = st.queue.pop_front() {
            let node = self.pick_node(&st, task);
            let ts = &mut st.tasks[task];
            let attempt = ts.attempts;
            ts.attempts += 1;
            ts.running += 1;
            ts.active_nodes.push(node);
            if ts.first_started.is_none() {
                ts.first_started = Some(Instant::now());
            }
            st.stats.attempts += 1;
            return Work::Run {
                task,
                attempt,
                node,
                speculative: false,
            };
        }
        if self.opts.speculative_execution {
            let threshold = Duration::from_millis(self.opts.speculation_threshold_ms);
            let now = Instant::now();
            for task in 0..st.tasks.len() {
                let ts = &st.tasks[task];
                let straggling = ts
                    .first_started
                    .is_some_and(|t0| now.duration_since(t0) >= threshold);
                if !ts.done
                    && ts.running > 0
                    && !ts.speculated
                    && ts.attempts < self.opts.max_task_attempts
                    && straggling
                {
                    let node = self.pick_node(&st, task);
                    let ts = &mut st.tasks[task];
                    let attempt = ts.attempts;
                    ts.attempts += 1;
                    ts.running += 1;
                    ts.active_nodes.push(node);
                    ts.speculated = true;
                    st.stats.attempts += 1;
                    st.stats.speculative_launched += 1;
                    sh_trace::events::emit(
                        "task.speculative.launched",
                        vec![
                            ("phase", self.phase.to_string()),
                            ("task", task.to_string()),
                            ("node", node.to_string()),
                        ],
                    );
                    return Work::Run {
                        task,
                        attempt,
                        node,
                        speculative: true,
                    };
                }
            }
        }
        Work::Wait
    }

    /// Node choice for an attempt: the scheduled node, then another live
    /// replica holder (data-local retry), then any live node (remote
    /// read) — always skipping blacklisted nodes, nodes this task
    /// already failed on, and nodes already running this task. With the
    /// whole cluster dead the scheduled node is returned so the DFS
    /// error surfaces naturally.
    fn pick_node(&self, st: &WaveState, task: usize) -> usize {
        let ts = &st.tasks[task];
        let excluded = |n: usize| {
            st.blacklist.contains(&n)
                || ts.failed_nodes.contains(&n)
                || ts.active_nodes.contains(&n)
        };
        let assigned = self.assignments[task];
        // A task's first attempt runs where it was scheduled even if the
        // node has died since (the scheduler only learns of the death
        // from the failed attempt, as from a missed heartbeat) — unless
        // a sibling task's failure already blacklisted the node.
        if ts.attempts == 0 && !st.blacklist.contains(&assigned) {
            return assigned;
        }
        if self.dfs.node_alive(assigned) && !excluded(assigned) {
            return assigned;
        }
        if let Some(&n) = self.replicas[task]
            .iter()
            .find(|&&n| self.dfs.node_alive(n) && !excluded(n))
        {
            return n;
        }
        let live = self.dfs.live_nodes();
        if let Some(&n) = live.iter().find(|&&n| !excluded(n)) {
            return n;
        }
        live.first().copied().unwrap_or(assigned)
    }

    fn execute<F>(&self, task: usize, attempt: usize, node: usize, speculative: bool, run_task: &F)
    where
        F: Fn(usize, usize) -> Result<T, JobError> + Sync,
    {
        let span = self
            .wave_span
            .child(format!("{}-{task}/attempt-{attempt}", self.phase));
        span.attr("node", node);
        if speculative {
            span.attr("speculative", true);
        }
        // Deterministic backoff before re-attempts: attempt `a` waits
        // `a * backoff` (speculative backups start immediately). The
        // backoff is queueing, not work — it runs before the slot lease
        // so a backing-off retry doesn't occupy cluster capacity.
        if attempt > 0 && !speculative && self.opts.retry_backoff_ms > 0 {
            std::thread::sleep(Duration::from_millis(
                self.opts.retry_backoff_ms * attempt as u64,
            ));
        }
        // Every attempt — first runs, retries, speculative backups —
        // executes under a lease from the cluster-wide slot pool, so N
        // concurrent jobs never run more attempts than the cluster has
        // slots. A straggler serves its injected delay holding its slot
        // (a slow node's slot is busy, not free).
        let slot = self.dfs.slots().acquire();
        // Injected straggler delay, in cancellable slices: when the
        // speculative backup wins meanwhile, the delayed loser aborts
        // instead of sleeping out its full handicap.
        let mut cancelled = false;
        if let Some(delay) = self.plan.and_then(|p| p.delay_for(task, attempt)) {
            let deadline = Instant::now() + delay;
            loop {
                if self.state.lock().unwrap().tasks[task].done {
                    cancelled = true;
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
            }
        }
        let verdict: Option<Result<T, JobError>> = if cancelled {
            span.attr("cancelled", true);
            None
        } else if self.plan.is_some_and(|p| p.should_fail(task, attempt)) {
            Some(Err(JobError::TaskFailed(format!(
                "injected fault: {}-{task}/attempt-{attempt}",
                self.phase
            ))))
        } else if !self.dfs.node_alive(node) && !self.dfs.live_nodes().is_empty() {
            // The attempt's node died while the cluster is otherwise
            // up: the task dies with it and reschedules elsewhere.
            Some(Err(JobError::TaskFailed(format!(
                "{}-{task}/attempt-{attempt}: node {node} lost",
                self.phase
            ))))
        } else {
            // Hadoop semantics: a panicking task fails the attempt (and
            // eventually the job), never the process. A typed
            // `CorruptInput` payload is a data error, not a crash — it
            // becomes `JobError::CorruptInput` and skips retries.
            let attempt_result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_task(task, node)));
            Some(attempt_result.unwrap_or_else(|panic| {
                match panic.downcast::<crate::job::CorruptInput>() {
                    Ok(corrupt) => Err(JobError::CorruptInput(format!(
                        "{}-{task}/attempt-{attempt}: {}",
                        self.phase, corrupt.0
                    ))),
                    Err(panic) => Err(JobError::TaskFailed(format!(
                        "{}-{task}/attempt-{attempt}: {}",
                        self.phase,
                        panic_message(&panic)
                    ))),
                }
            }))
        };
        span.finish();
        // Release the slot before settling: settle is pure bookkeeping
        // and the freed slot may unblock another job's attempt.
        drop(slot);
        self.settle(task, node, speculative, verdict, span.elapsed());
    }

    /// Records an attempt's outcome; called exactly once per attempt.
    fn settle(
        &self,
        task: usize,
        node: usize,
        speculative: bool,
        verdict: Option<Result<T, JobError>>,
        elapsed: Duration,
    ) {
        let mut blacklisted_now = false;
        {
            let mut st = self.state.lock().unwrap();
            {
                let ts = &mut st.tasks[task];
                ts.running -= 1;
                ts.active_nodes.retain(|&n| n != node);
            }
            match verdict {
                Some(Ok(result)) if !st.tasks[task].done => {
                    st.tasks[task].done = true;
                    st.remaining -= 1;
                    if speculative {
                        st.stats.speculative_won += 1;
                        sh_trace::events::emit(
                            "task.speculative.won",
                            vec![
                                ("phase", self.phase.to_string()),
                                ("task", task.to_string()),
                                ("node", node.to_string()),
                            ],
                        );
                    }
                    self.results.lock().unwrap()[task] = Some(result);
                    // Only the winning attempt shapes the duration
                    // histogram: one entry per task.
                    let micros = elapsed.as_micros() as u64;
                    self.task_micros.lock().unwrap().observe(micros);
                }
                Some(Err(e)) if !st.tasks[task].done => {
                    st.tasks[task].failed_nodes.push(node);
                    let failures = st.node_failures.entry(node).or_insert(0);
                    *failures += 1;
                    if *failures >= self.opts.node_blacklist_threshold as u64
                        && !st.blacklist.contains(&node)
                    {
                        st.blacklist.push(node);
                        st.stats.nodes_blacklisted += 1;
                        blacklisted_now = true;
                        let node_failures = st.node_failures.get(&node).copied().unwrap_or(0);
                        sh_trace::events::emit(
                            "node.blacklist",
                            vec![
                                ("phase", self.phase.to_string()),
                                ("node", node.to_string()),
                                ("failures", node_failures.to_string()),
                            ],
                        );
                    }
                    let ts = &st.tasks[task];
                    let attempts = ts.attempts;
                    if matches!(e, JobError::CorruptInput(_)) {
                        // Deterministic data error: re-reading the same
                        // corrupt bytes cannot succeed, so retrying only
                        // burns attempts. Fail the job now (first error
                        // wins).
                        if st.fatal.is_none() {
                            st.fatal = Some(e);
                        }
                    } else if attempts < self.opts.max_task_attempts {
                        st.stats.retries += 1;
                        st.queue.push_back(task);
                        sh_trace::events::emit(
                            "task.retry",
                            vec![
                                ("phase", self.phase.to_string()),
                                ("task", task.to_string()),
                                ("node", node.to_string()),
                                ("attempt", attempts.to_string()),
                            ],
                        );
                    } else if ts.running == 0 {
                        // Attempt budget exhausted with nothing in
                        // flight: the job fails. Keep the FIRST
                        // error; workers stop claiming.
                        if st.fatal.is_none() {
                            st.fatal = Some(e);
                        }
                    }
                    // Otherwise a sibling attempt is still running
                    // and gets to decide the task's fate.
                }
                // Cancelled loser of a speculative race (`None`), or a
                // late finisher of an already-won task: not a failure.
                _ => {}
            }
            self.cv.notify_all();
        }
        if blacklisted_now {
            // A node the scheduler gave up on is likely dead: ask the
            // namenode to restore the replication factor so retries
            // find live replicas (no-op for healthy nodes).
            let created = self.dfs.rereplicate();
            self.wave_span.attr("rereplicated_blocks", created);
            sh_trace::global().counter_add("job.rereplicated.blocks", created as u64);
        }
    }
}

/// Worker-thread count for a wave: the cluster's global slot-pool size,
/// never more than the task count — plus one slot of headroom for
/// speculative backups. Threads beyond the pool would only block on
/// slot leases, so there is no point spawning them; attempts themselves
/// are additionally capped by the shared pool at execution time.
fn wave_threads(dfs: &Dfs, opts: &FtOptions, n_tasks: usize) -> usize {
    let pool = dfs.slots().total().max(1);
    let headroom = usize::from(opts.speculative_execution);
    pool.min(n_tasks.saturating_add(headroom).max(1))
}

/// Runs a configured job (called from [`Job::run`]).
pub(crate) fn run<M, R>(job: Job<M, R>) -> Result<JobOutcome, JobError>
where
    M: Mapper,
    R: Reducer<K = M::K, V = M::V>,
{
    let start = Instant::now();
    let dfs = job.dfs.clone();
    let cfg = dfs.config().clone();
    let opts = dfs.ft_options();
    let counters = Counters::new();
    let span = Span::root(format!("job:{}", job.name));
    span.attr("splits", job.splits.len());
    span.attr(
        "reducers",
        job.reducer.as_ref().map(|_| job.num_reducers).unwrap_or(0),
    );
    sh_trace::events::emit(
        "job.started",
        vec![
            ("job", job.name.clone()),
            ("splits", job.splits.len().to_string()),
        ],
    );

    // Hadoop semantics: refuse to run into a non-empty output directory
    // (prevents part files from different jobs from mixing).
    if !dfs.list(&format!("{}/part-", job.output)).is_empty() {
        return Err(JobError::Config(format!(
            "output directory {} already contains part files",
            job.output
        )));
    }

    // ---- schedule: assign each split to a live node, locality first ---
    let assignments = assign_nodes(&job, cfg.num_nodes);

    // ---- wave boundary: injected node kills strike here --------------
    // (after scheduling, before the first attempt runs — tasks placed
    // on a killed node must fail over to replica holders).
    for node in opts.fault_plan.nodes_to_kill() {
        dfs.kill_node(node);
        span.attr("injected_node_kill", node);
    }
    // Silent replica corruption strikes at the same boundary: the rotten
    // bytes sit there undetected until a map task's read checksums them.
    for (path, replica, kind) in opts.fault_plan.corruptions() {
        let hit = dfs.corrupt_replica(&path, replica, kind);
        span.attr(
            "injected_corruption",
            format!("{kind}:{path}@{replica}x{hit}"),
        );
    }

    // ---- map phase ----------------------------------------------------
    let n_tasks = job.splits.len();
    let map_span = span.child("map-wave");
    map_span.attr("tasks", n_tasks);
    let mut ft = FtStats::default();
    let replicas: Vec<Vec<usize>> = job
        .splits
        .iter()
        .map(|s| s.preferred_nodes().to_vec())
        .collect();
    let (mut map_results, map_ft, map_task_micros) = if n_tasks > 0 {
        let runner: WaveRunner<'_, MapTaskResult<M::K, M::V>> = WaveRunner::new(
            &dfs,
            &opts,
            Some(&opts.fault_plan),
            &map_span,
            "map",
            &assignments,
            replicas,
        );
        let outcome = runner.run(wave_threads(&dfs, &opts, n_tasks), |task, node| {
            run_map_task(&job, task, node).map_err(JobError::Dfs)
        });
        map_span.finish();
        outcome?
    } else {
        map_span.finish();
        (Vec::new(), FtStats::default(), Histogram::new())
    };
    ft.absorb(map_ft);

    // ---- side files (named outputs shared across tasks) ---------------
    let mut side_files: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut side_blobs: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for res in map_results.iter_mut() {
        for (name, lines) in std::mem::take(&mut res.side) {
            let bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
            res.cost.output_bytes += bytes;
            side_files.entry(name).or_default().extend(lines);
        }
        for (name, chunk) in std::mem::take(&mut res.side_bytes) {
            res.cost.output_bytes += chunk.len() as u64;
            side_blobs
                .entry(name)
                .or_default()
                .extend_from_slice(&chunk);
        }
    }

    // ---- map-side final output (map-only jobs & early flush) ----------
    for (i, res) in map_results.iter_mut().enumerate() {
        if !res.output.is_empty() {
            let path = format!("{}/part-m-{i:05}", job.output);
            let mut w = dfs.create(&path)?;
            for line in &res.output {
                w.write_line(line);
            }
            w.close()?;
            let bytes: u64 = res.output.iter().map(|l| l.len() as u64 + 1).sum();
            res.cost.output_bytes += bytes;
            counters.inc_static("output.map.bytes", bytes);
        }
        counters.merge(&res.counters);
        counters.inc_static("map.input.bytes.local", res.cost.local_bytes);
        counters.inc_static("map.input.bytes.remote", res.cost.remote_bytes);
    }
    counters.inc_static("map.tasks", n_tasks as u64);

    let map_costs: Vec<TaskCost> = map_results.iter().map(|r| r.cost).collect();
    let map_makespan = makespan(&map_costs, &cfg, cfg.map_slots_per_node);

    // ---- shuffle -------------------------------------------------------
    let mut sim = SimBreakdown {
        startup: cfg.job_startup_overhead,
        map: map_makespan,
        shuffle: 0.0,
        reduce: 0.0,
    };

    let mut reduce_tasks_run = 0usize;
    let mut shuffle_pairs_total = 0u64;
    let mut shuffle_bytes_total = 0u64;
    let mut reduce_task_micros = Histogram::new();
    if let Some(reducer) = &job.reducer {
        let shuffle_span = span.child("shuffle");
        let r = job.num_reducers;
        // Pairs were hashed into per-reducer buckets at emit time inside
        // the (parallel) map tasks; the shuffle is now a bucket-wise
        // concatenation in task order — same order the per-pair
        // redistribution pass used to produce.
        let mut buckets: Vec<Vec<(M::K, M::V)>> = (0..r).map(|_| Vec::new()).collect();
        let mut shuffle_bytes = 0u64;
        let mut shuffle_pairs = 0u64;
        for res in map_results.iter_mut() {
            shuffle_pairs += res.shuffle_pairs;
            shuffle_bytes += res.shuffle_bytes;
            for (b, bucket) in res.buckets.drain(..).enumerate() {
                buckets[b].extend(bucket);
            }
        }
        counters.inc_static("shuffle.pairs", shuffle_pairs);
        counters.inc_static("shuffle.bytes", shuffle_bytes);
        shuffle_pairs_total = shuffle_pairs;
        shuffle_bytes_total = shuffle_bytes;
        sim.shuffle = shuffle_time(shuffle_bytes, &cfg);
        shuffle_span.attr("pairs", shuffle_pairs);
        shuffle_span.attr("bytes", shuffle_bytes);
        shuffle_span.finish();

        // ---- reduce phase ---------------------------------------------
        let reduce_span = span.child("reduce-wave");
        reduce_span.attr("tasks", r);
        // Reduce tasks are scheduled round-robin over *live* nodes: by
        // reduce time the scheduler has heard which nodes died during
        // the map wave (dead-cluster fallback keeps the error path).
        let live_nodes = {
            let live = dfs.live_nodes();
            if live.is_empty() {
                (0..cfg.num_nodes.max(1)).collect()
            } else {
                live
            }
        };
        let reduce_assignments: Vec<usize> =
            (0..r).map(|i| live_nodes[i % live_nodes.len()]).collect();
        let buckets_ref = &buckets;
        // Reduce retries reuse the wave machinery; fault injection and
        // replica-directed rescheduling only apply to map waves.
        let runner: WaveRunner<'_, ReduceTaskResult> = WaveRunner::new(
            &dfs,
            &opts,
            None,
            &reduce_span,
            "reduce",
            &reduce_assignments,
            vec![Vec::new(); r],
        );
        let outcome = runner.run(wave_threads(&dfs, &opts, r), |task, _node| {
            Ok(run_reduce_task::<M, R>(
                reducer,
                &buckets_ref[task],
                task,
                &cfg,
            ))
        });
        reduce_span.finish();
        let (reduce_results, reduce_ft, micros) = outcome?;
        ft.absorb(reduce_ft);
        reduce_task_micros = micros;

        let mut reduce_costs: Vec<TaskCost> = Vec::with_capacity(r);
        for (i, res) in reduce_results.into_iter().enumerate() {
            let (mut cost, output, side, side_bytes, task_counters) = res;
            for (name, lines) in side {
                let bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
                cost.output_bytes += bytes;
                side_files.entry(name).or_default().extend(lines);
            }
            for (name, chunk) in side_bytes {
                cost.output_bytes += chunk.len() as u64;
                side_blobs
                    .entry(name)
                    .or_default()
                    .extend_from_slice(&chunk);
            }
            if !output.is_empty() {
                let path = format!("{}/part-r-{i:05}", job.output);
                let mut w = dfs.create(&path)?;
                for line in &output {
                    w.write_line(line);
                }
                w.close()?;
                let bytes: u64 = output.iter().map(|l| l.len() as u64 + 1).sum();
                cost.output_bytes += bytes;
                counters.inc_static("output.reduce.bytes", bytes);
            }
            counters.merge(&task_counters);
            reduce_costs.push(cost);
            reduce_tasks_run += 1;
        }
        sim.reduce = makespan(&reduce_costs, &cfg, cfg.reduce_slots_per_node);
        counters.inc_static("reduce.tasks", reduce_tasks_run as u64);
    }

    // Side files are written last so reduce-side side outputs are merged
    // in too.
    for (name, lines) in side_files {
        let path = format!("{}/{name}", job.output);
        let mut w = dfs.create(&path)?;
        for line in &lines {
            w.write_line(line);
        }
        w.close()?;
        counters.inc_static(
            "output.side.bytes",
            lines.iter().map(|l| l.len() as u64 + 1).sum(),
        );
    }
    for (name, blob) in side_blobs {
        let path = format!("{}/{name}", job.output);
        let mut w = dfs.create(&path)?;
        w.write_chunk(&blob);
        w.close()?;
        counters.inc_static("output.side.bytes", blob.len() as u64);
    }

    counters.inc_static("task.retries", ft.retries);
    counters.inc_static("task.speculative.launched", ft.speculative_launched);
    counters.inc_static("task.speculative.won", ft.speculative_won);
    counters.inc_static("nodes.blacklisted", ft.nodes_blacklisted);
    span.attr("task_retries", ft.retries);
    span.attr("speculative_launched", ft.speculative_launched);
    span.attr("nodes_blacklisted", ft.nodes_blacklisted);

    span.finish();
    let counters = counters.snapshot();
    let profile = build_profile(
        &job.name,
        start.elapsed(),
        &sim,
        &counters,
        &map_costs,
        n_tasks,
        reduce_tasks_run,
        map_task_micros,
        reduce_task_micros,
        shuffle_pairs_total,
        shuffle_bytes_total,
        ft,
        span.record(),
    );

    Ok(JobOutcome {
        name: job.name,
        output: job.output,
        counters,
        sim,
        wall: start.elapsed(),
        map_tasks: n_tasks,
        reduce_tasks: reduce_tasks_run,
        profile,
    })
}

/// Assembles the job's [`JobProfile`] and rolls process-lifetime totals
/// into the global trace registry (`job.*` keys).
#[allow(clippy::too_many_arguments)]
fn build_profile(
    name: &str,
    wall: Duration,
    sim: &SimBreakdown,
    counters: &BTreeMap<String, u64>,
    map_costs: &[TaskCost],
    map_tasks: usize,
    reduce_tasks: usize,
    map_task_micros: Histogram,
    reduce_task_micros: Histogram,
    shuffle_pairs: u64,
    shuffle_bytes: u64,
    ft: FtStats,
    spans: sh_trace::SpanRecord,
) -> JobProfile {
    let registry = sh_trace::global();
    registry.counter_add("job.completed", 1);
    registry.counter_add("job.map.tasks", map_tasks as u64);
    registry.counter_add("job.reduce.tasks", reduce_tasks as u64);
    registry.counter_add("job.shuffle.pairs", shuffle_pairs);
    registry.counter_add("job.shuffle.bytes", shuffle_bytes);
    registry.counter_add("job.task_retries", ft.retries);
    registry.counter_add("job.speculative_launched", ft.speculative_launched);
    registry.counter_add("job.speculative_won", ft.speculative_won);
    registry.counter_add("job.nodes_blacklisted", ft.nodes_blacklisted);
    registry.observe("job.wall.micros", wall.as_micros() as u64);
    registry.observe_histogram("job.map.task.micros", &map_task_micros);
    registry.observe_histogram("job.reduce.task.micros", &reduce_task_micros);
    sh_trace::events::emit(
        "job.finished",
        vec![
            ("job", name.to_string()),
            ("wall_micros", (wall.as_micros() as u64).to_string()),
            ("retries", ft.retries.to_string()),
        ],
    );

    let mut profile = JobProfile::new(name);
    profile.wall = wall;
    profile.sim_seconds = sim.total();
    let mut startup = PhaseProfile::new("startup");
    startup.sim_seconds = sim.startup;
    let mut map = PhaseProfile::new("map");
    map.sim_seconds = sim.map;
    map.tasks = map_tasks as u64;
    map.task_micros = map_task_micros;
    let mut shuffle = PhaseProfile::new("shuffle");
    shuffle.sim_seconds = sim.shuffle;
    let mut reduce = PhaseProfile::new("reduce");
    reduce.sim_seconds = sim.reduce;
    reduce.tasks = reduce_tasks as u64;
    reduce.task_micros = reduce_task_micros;
    profile.phases = vec![startup, map, shuffle, reduce];
    profile.dfs_local_bytes = map_costs.iter().map(|c| c.local_bytes).sum();
    profile.dfs_remote_bytes = map_costs.iter().map(|c| c.remote_bytes).sum();
    profile.dfs_bytes_written = counters.get("output.map.bytes").copied().unwrap_or(0)
        + counters.get("output.reduce.bytes").copied().unwrap_or(0)
        + counters.get("output.side.bytes").copied().unwrap_or(0);
    profile.shuffle_pairs = shuffle_pairs;
    profile.shuffle_bytes = shuffle_bytes;
    profile.task_retries = ft.retries;
    profile.speculative_launched = ft.speculative_launched;
    profile.speculative_won = ft.speculative_won;
    profile.nodes_blacklisted = ft.nodes_blacklisted;
    profile.counters = counters.clone();
    profile.spans = Some(spans);
    profile
}

/// Locality-aware greedy assignment of splits to nodes: each split goes
/// to its least-loaded *live* replica holder; load is balanced in bytes.
/// Dead nodes are skipped at schedule time (the namenode knows the
/// heartbeat state); nodes that die later are handled by attempt
/// rescheduling.
fn assign_nodes<M: Mapper, R: Reducer<K = M::K, V = M::V>>(
    job: &Job<M, R>,
    num_nodes: usize,
) -> Vec<usize> {
    let alive: Vec<bool> = (0..num_nodes.max(1))
        .map(|n| job.dfs.node_alive(n))
        .collect();
    let any_alive = alive.iter().any(|&a| a);
    let usable = |n: usize| !any_alive || alive.get(n).copied().unwrap_or(false);
    let mut load = vec![0u64; num_nodes.max(1)];
    let mut order: Vec<usize> = (0..job.splits.len()).collect();
    // Place big splits first (LPT-style) for better balance.
    order.sort_by_key(|&i| std::cmp::Reverse(job.splits[i].len()));
    let locality = job.dfs.config().locality_scheduling;
    let mut assignment = vec![0usize; job.splits.len()];
    for i in order {
        let split = &job.splits[i];
        let preferred = split.preferred_nodes();
        let fallback = |load: &[u64]| {
            (0..load.len())
                .filter(|&n| usable(n))
                .min_by_key(|&n| load[n])
                .unwrap_or(0)
        };
        let node = if locality {
            preferred
                .iter()
                .copied()
                .map(|n| n % load.len())
                .filter(|&n| usable(n))
                .min_by_key(|&n| load[n])
                .unwrap_or_else(|| fallback(&load))
        } else {
            // Locality-blind: pure load balancing, ignoring replicas.
            fallback(&load)
        };
        let node = node % load.len();
        load[node] += split.len().max(1);
        assignment[i] = node;
    }
    assignment
}

fn run_map_task<M, R>(
    job: &Job<M, R>,
    task: usize,
    node: usize,
) -> Result<MapTaskResult<M::K, M::V>, DfsError>
where
    M: Mapper,
    R: Reducer<K = M::K, V = M::V>,
{
    let split = &job.splits[task];
    let mut local = 0u64;
    let mut remote = 0u64;
    // Splits are raw bytes end to end; `Mapper::map_bytes` decides
    // whether they are text (default: UTF-8 decode, corrupt-input
    // failure on binary garbage) or a binary block format.
    // Single-block splits (the common case: one partition per file,
    // file under the DFS block size) borrow the block's shared payload
    // instead of copying it into a fresh buffer.
    let mut single: Option<bytes::Bytes> = None;
    let mut data = Vec::new();
    if split.blocks.len() == 1 {
        let (bytes, was_local) = job.dfs.read_block(split.blocks[0].id, node)?;
        if was_local {
            local += bytes.len() as u64;
        } else {
            remote += bytes.len() as u64;
        }
        single = Some(bytes);
    } else {
        data.reserve(split.len() as usize);
        for b in &split.blocks {
            let (bytes, was_local) = job.dfs.read_block(b.id, node)?;
            if was_local {
                local += bytes.len() as u64;
            } else {
                remote += bytes.len() as u64;
            }
            data.extend_from_slice(&bytes);
        }
    }
    let num_reducers = if job.reducer.is_some() {
        job.num_reducers
    } else {
        0
    };
    let mut ctx = MapContext::new(num_reducers);
    let t0 = Instant::now();
    job.mapper
        .map_bytes(split, single.as_deref().unwrap_or(&data), &mut ctx);
    let counters = ctx.take_counters();
    let mut buckets = ctx.buckets;
    if let Some(combiner) = &job.combiner {
        // Every pair of a key hashes to one bucket, so combining per
        // bucket sees exactly the key groups the whole-task combine saw.
        for bucket in buckets.iter_mut() {
            let pairs = std::mem::take(bucket);
            *bucket = apply_combiner(pairs, combiner);
        }
    }
    let compute = t0.elapsed().as_secs_f64();
    let mut shuffle_pairs = 0u64;
    let mut shuffle_bytes = 0u64;
    if job.reducer.is_some() {
        for (k, v) in buckets.iter().flatten() {
            shuffle_pairs += 1;
            shuffle_bytes += (job.pair_size)(k, v) as u64;
        }
    }
    Ok(MapTaskResult {
        cost: TaskCost {
            node,
            local_bytes: local,
            remote_bytes: remote,
            output_bytes: 0,
            compute_seconds: compute,
        },
        buckets,
        shuffle_pairs,
        shuffle_bytes,
        output: ctx.output,
        side: ctx.side,
        side_bytes: ctx.side_bytes,
        counters,
    })
}

fn apply_combiner<K: Clone + Ord + Hash + Send, V: Clone + Send>(
    mut pairs: Vec<(K, V)>,
    combiner: &crate::job::CombinerFn<K, V>,
) -> Vec<(K, V)> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(K, V)> = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let key = pairs[i].0.clone();
        let values: Vec<V> = pairs[i..j].iter().map(|(_, v)| v.clone()).collect();
        for v in combiner(&key, values) {
            out.push((key.clone(), v));
        }
        i = j;
    }
    out
}

type ReduceTaskResult = (
    TaskCost,
    Vec<String>,
    BTreeMap<String, Vec<String>>,
    BTreeMap<String, Vec<u8>>,
    BTreeMap<String, u64>,
);

fn run_reduce_task<M, R>(
    reducer: &R,
    bucket: &[(M::K, M::V)],
    task: usize,
    cfg: &sh_dfs::ClusterConfig,
) -> ReduceTaskResult
where
    M: Mapper,
    R: Reducer<K = M::K, V = M::V>,
{
    let node = task % cfg.num_nodes.max(1);
    // Sort/group phase: stable sort keeps map-task emission order within
    // a key, so results are deterministic.
    let mut pairs: Vec<(M::K, M::V)> = bucket.to_vec();
    let t0 = Instant::now();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut ctx = ReduceContext::new();
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let key = pairs[i].0.clone();
        let values: Vec<M::V> = pairs[i..j].iter().map(|(_, v)| v.clone()).collect();
        reducer.reduce(&key, values, &mut ctx);
        i = j;
    }
    let compute = t0.elapsed().as_secs_f64();
    let counters = ctx.take_counters();
    (
        TaskCost {
            node,
            local_bytes: 0,
            remote_bytes: 0,
            output_bytes: 0,
            compute_seconds: compute,
        },
        ctx.output,
        ctx.side,
        ctx.side_bytes,
        counters,
    )
}

/// Best-effort extraction of a panic payload message.
fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobBuilder;
    use crate::split::InputSplit;
    use sh_dfs::ClusterConfig;

    struct CountMapper;
    impl Mapper for CountMapper {
        type K = String;
        type V = u64;
        fn map(&self, _s: &InputSplit, data: &str, ctx: &mut MapContext<String, u64>) {
            for token in data.split_whitespace() {
                ctx.emit(token.to_string(), 1);
            }
            ctx.counter("user.records", data.lines().count() as u64);
        }
    }

    struct SumReducer;
    impl Reducer for SumReducer {
        type K = String;
        type V = u64;
        fn reduce(&self, k: &String, vs: Vec<u64>, ctx: &mut ReduceContext) {
            ctx.output(format!("{k} {}", vs.iter().sum::<u64>()));
        }
    }

    fn dfs() -> Dfs {
        Dfs::new(ClusterConfig::small_for_tests())
    }

    fn wordcount_input(fs: &Dfs, lines: usize) {
        let mut w = fs.create("/in").unwrap();
        for i in 0..lines {
            w.write_line(&format!("w{} common", i % 10));
        }
        w.close().unwrap();
    }

    #[test]
    fn wordcount_end_to_end() {
        let fs = dfs();
        wordcount_input(&fs, 5000); // multiple blocks
        let outcome = JobBuilder::new(&fs, "wc")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 3)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(outcome.map_tasks > 1, "expected multiple splits");
        assert_eq!(outcome.reduce_tasks, 3);
        let mut lines = outcome.read_output(&fs).unwrap();
        lines.sort();
        assert_eq!(lines.len(), 11); // w0..w9 + common
        assert!(lines.contains(&"common 5000".to_string()));
        assert!(lines.contains(&"w0 500".to_string()));
        assert_eq!(outcome.counters["user.records"], 5000);
        assert_eq!(outcome.counters["shuffle.pairs"], 10_000);
        assert!(outcome.sim.total() > 0.0);
        // Fault-free run: no retries, nothing blacklisted.
        assert_eq!(outcome.profile.task_retries, 0);
        assert_eq!(outcome.profile.nodes_blacklisted, 0);
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        let fs = dfs();
        wordcount_input(&fs, 5000);
        let without = JobBuilder::new(&fs, "wc")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 2)
            .output("/out1")
            .build()
            .unwrap()
            .run()
            .unwrap();
        let with = JobBuilder::new(&fs, "wc-comb")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .combiner(|_k, vs: Vec<u64>| vec![vs.iter().sum()])
            .reducer(SumReducer, 2)
            .output("/out2")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(with.counters["shuffle.pairs"] < without.counters["shuffle.pairs"]);
        let mut a = without.read_output(&fs).unwrap();
        let mut b = with.read_output(&fs).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "combiner must not change results");
    }

    struct PassthroughMapper;
    impl Mapper for PassthroughMapper {
        type K = u32;
        type V = u32;
        fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<u32, u32>) {
            for line in data.lines() {
                ctx.output(format!("{}:{}", split.tag, line));
            }
        }
    }

    #[test]
    fn map_only_job_writes_map_output() {
        let fs = dfs();
        fs.write_string("/in", "a\nb\n").unwrap();
        let outcome = JobBuilder::new(&fs, "identity")
            .input_file("/in")
            .unwrap()
            .mapper(PassthroughMapper)
            .output("/out")
            .map_only()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.reduce_tasks, 0);
        let mut lines = outcome.read_output(&fs).unwrap();
        lines.sort();
        assert_eq!(lines, vec!["0:a", "0:b"]);
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let fs = dfs();
            wordcount_input(&fs, 3000);
            let outcome = JobBuilder::new(&fs, "wc")
                .input_file("/in")
                .unwrap()
                .mapper(CountMapper)
                .reducer(SumReducer, 4)
                .output("/out")
                .build()
                .unwrap()
                .run()
                .unwrap();
            outcome.read_output(&fs).unwrap()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn input_byte_accounting_balances() {
        let fs = dfs();
        wordcount_input(&fs, 4000);
        let file_len = fs.stat("/in").unwrap().len;
        let outcome = JobBuilder::new(&fs, "account")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 2)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        // A full scan reads every input byte exactly once (local +
        // remote partition of the same total).
        assert_eq!(
            outcome.counters["map.input.bytes.local"] + outcome.counters["map.input.bytes.remote"],
            file_len
        );
        // Shuffle pairs equal total tokens (2 per line).
        assert_eq!(outcome.counters["shuffle.pairs"], 8000);
    }

    #[test]
    fn concurrent_jobs_on_one_dfs_are_safe() {
        let fs = dfs();
        wordcount_input(&fs, 2000);
        let run = |out: &str| {
            JobBuilder::new(&fs, "concurrent")
                .input_file("/in")
                .unwrap()
                .mapper(CountMapper)
                .reducer(SumReducer, 2)
                .output(out)
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let (a, b) = std::thread::scope(|scope| {
            let ha = scope.spawn(|| run("/out-a"));
            let hb = scope.spawn(|| run("/out-b"));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        let mut la = a.read_output(&fs).unwrap();
        let mut lb = b.read_output(&fs).unwrap();
        la.sort();
        lb.sort();
        assert_eq!(la, lb);
        assert!(la.contains(&"common 2000".to_string()));
    }

    #[test]
    fn missing_input_is_an_error() {
        let fs = dfs();
        assert!(matches!(
            JobBuilder::<CountMapper>::new(&fs, "x").input_file("/nope"),
            Err(JobError::Config(_)) | Err(JobError::Dfs(_))
        ));
    }

    #[test]
    fn zero_reducers_rejected() {
        let fs = dfs();
        fs.write_string("/in", "a\n").unwrap();
        let err = JobBuilder::new(&fs, "x")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 0)
            .output("/o")
            .build();
        assert!(matches!(err, Err(JobError::Config(_))));
    }

    #[test]
    fn sim_time_includes_startup_and_scales_with_input() {
        let fs = dfs();
        wordcount_input(&fs, 500);
        let small = JobBuilder::new(&fs, "s")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 1)
            .output("/o1")
            .build()
            .unwrap()
            .run()
            .unwrap();
        let fs2 = dfs();
        wordcount_input(&fs2, 50_000);
        let big = JobBuilder::new(&fs2, "b")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 1)
            .output("/o2")
            .build()
            .unwrap()
            .run()
            .unwrap();
        let cfg = ClusterConfig::small_for_tests();
        assert!(small.sim.startup == cfg.job_startup_overhead);
        assert!(big.sim.total() > small.sim.total());
    }

    struct PanickingMapper;
    impl Mapper for PanickingMapper {
        type K = u8;
        type V = u8;
        fn map(&self, _s: &InputSplit, data: &str, _ctx: &mut MapContext<u8, u8>) {
            if data.contains("poison") {
                panic!("corrupt record encountered");
            }
        }
    }

    #[test]
    fn map_task_panic_fails_the_job_not_the_process() {
        let fs = dfs();
        fs.write_string("/in", "fine\npoison\n").unwrap();
        let err = JobBuilder::new(&fs, "poisoned")
            .input_file("/in")
            .unwrap()
            .mapper(PanickingMapper)
            .output("/o")
            .map_only()
            .unwrap()
            .run();
        match err {
            Err(JobError::TaskFailed(msg)) => {
                assert!(msg.contains("corrupt record"), "{msg}")
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    struct PanickingReducer;
    impl Reducer for PanickingReducer {
        type K = u8;
        type V = u8;
        fn reduce(&self, _k: &u8, _vs: Vec<u8>, _ctx: &mut ReduceContext) {
            panic!("reducer exploded");
        }
    }

    struct EmitOneMapper;
    impl Mapper for EmitOneMapper {
        type K = u8;
        type V = u8;
        fn map(&self, _s: &InputSplit, _d: &str, ctx: &mut MapContext<u8, u8>) {
            ctx.emit(1, 1);
        }
    }

    #[test]
    fn reduce_task_panic_fails_the_job_not_the_process() {
        let fs = dfs();
        fs.write_string("/in", "x\n").unwrap();
        let err = JobBuilder::new(&fs, "boom")
            .input_file("/in")
            .unwrap()
            .mapper(EmitOneMapper)
            .reducer(PanickingReducer, 1)
            .output("/o")
            .build()
            .unwrap()
            .run();
        assert!(matches!(err, Err(JobError::TaskFailed(_))), "{err:?}");
    }

    #[test]
    fn node_failure_fails_job_cleanly() {
        let fs = dfs();
        wordcount_input(&fs, 100);
        // Kill every node: reads must fail, job returns Dfs error.
        for n in 0..fs.config().num_nodes {
            fs.kill_node(n);
        }
        let err = JobBuilder::new(&fs, "dead")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 1)
            .output("/o")
            .build()
            .unwrap()
            .run();
        assert!(matches!(err, Err(JobError::Dfs(_))));
    }

    struct AuxEchoMapper;
    impl Mapper for AuxEchoMapper {
        type K = u8;
        type V = u8;
        fn map(&self, split: &InputSplit, _data: &str, ctx: &mut MapContext<u8, u8>) {
            ctx.output(format!(
                "{}:{}",
                split.partition_id.unwrap_or(999),
                split.aux.as_deref().unwrap_or("-")
            ));
        }
    }

    #[test]
    fn splits_carry_partition_metadata_and_aux_to_mappers() {
        let fs = dfs();
        fs.write_string("/in", "x\n").unwrap();
        let split = crate::split::InputSplit::whole_file(&fs, "/in")
            .unwrap()
            .with_partition(7, [0.0, 0.0, 1.0, 1.0])
            .with_aux("payload 42".into());
        let outcome = JobBuilder::new(&fs, "aux")
            .input_splits(vec![split])
            .mapper(AuxEchoMapper)
            .output("/out")
            .map_only()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.read_output(&fs).unwrap(), vec!["7:payload 42"]);
    }

    struct SideMapper;
    impl Mapper for SideMapper {
        type K = u8;
        type V = u64;
        fn map(&self, _s: &InputSplit, data: &str, ctx: &mut MapContext<u8, u64>) {
            for line in data.lines() {
                ctx.side_output("spill", format!("m:{line}"));
                ctx.emit(1, line.len() as u64);
            }
        }
    }

    struct SideReducer;
    impl Reducer for SideReducer {
        type K = u8;
        type V = u64;
        fn reduce(&self, _k: &u8, vs: Vec<u64>, ctx: &mut ReduceContext) {
            ctx.side_output("spill", format!("r:{}", vs.len()));
            ctx.output(format!("{}", vs.iter().sum::<u64>()));
        }
    }

    #[test]
    fn side_files_merge_map_and_reduce_contributions() {
        let fs = dfs();
        fs.write_string("/in", "aa\nbbb\n").unwrap();
        let outcome = JobBuilder::new(&fs, "side")
            .input_file("/in")
            .unwrap()
            .mapper(SideMapper)
            .reducer(SideReducer, 1)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.read_output(&fs).unwrap(), vec!["5"]);
        let spill = fs.read_to_string("/out/spill").unwrap();
        let mut lines: Vec<&str> = spill.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["m:aa", "m:bbb", "r:2"]);
    }

    #[test]
    fn output_collision_is_rejected() {
        let fs = dfs();
        fs.write_string("/in", "a\n").unwrap();
        let run = |out: &str| {
            JobBuilder::new(&fs, "c")
                .input_file("/in")
                .unwrap()
                .mapper(PassthroughMapper)
                .output(out)
                .map_only()
                .unwrap()
                .run()
        };
        run("/dup").unwrap();
        assert!(matches!(run("/dup"), Err(JobError::Config(_))));
    }

    #[test]
    fn outcome_carries_a_complete_profile() {
        let fs = dfs();
        wordcount_input(&fs, 5000);
        let outcome = JobBuilder::new(&fs, "profiled")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 3)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        let p = &outcome.profile;
        assert_eq!(p.job, "profiled");
        assert!(p.sim_seconds > 0.0);
        let map = p.phase("map").unwrap();
        assert_eq!(map.tasks, outcome.map_tasks as u64);
        assert_eq!(map.task_micros.count(), outcome.map_tasks as u64);
        let reduce = p.phase("reduce").unwrap();
        assert_eq!(reduce.tasks, 3);
        assert_eq!(reduce.task_micros.count(), 3);
        assert_eq!(
            p.dfs_local_bytes + p.dfs_remote_bytes,
            fs.stat("/in").unwrap().len
        );
        assert_eq!(p.shuffle_pairs, outcome.counters["shuffle.pairs"]);
        assert!(p.dfs_bytes_written > 0);
        assert_eq!(p.counters, outcome.counters);
        // Span tree: root job span with map-wave/shuffle/reduce-wave
        // children, and one span per task attempt (fault-free run: one
        // attempt per task).
        let spans = p.spans.as_ref().unwrap();
        assert_eq!(spans.name, "job:profiled");
        let wave = spans.find("map-wave").unwrap();
        assert_eq!(wave.children.len(), outcome.map_tasks);
        assert!(spans.find("map-0/attempt-0").is_some());
        assert!(spans.find("shuffle").is_some());
        assert_eq!(spans.find("reduce-wave").unwrap().children.len(), 3);
        // JSON export of a real profile round-trips.
        let back = sh_trace::JobProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(&back, p);
    }

    #[test]
    fn job_survives_single_node_failure() {
        let fs = dfs();
        wordcount_input(&fs, 2000);
        fs.kill_node(0);
        let outcome = JobBuilder::new(&fs, "one-dead")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 2)
            .output("/o")
            .build()
            .unwrap()
            .run()
            .unwrap();
        let mut lines = outcome.read_output(&fs).unwrap();
        lines.sort();
        assert!(lines.contains(&"common 2000".to_string()));
    }

    // ---- fault-tolerance unit tests ----------------------------------

    /// A config with fast retries for fault tests.
    fn chaos_config() -> ClusterConfig {
        ClusterConfig {
            retry_backoff_ms: 0,
            ..ClusterConfig::small_for_tests()
        }
    }

    #[test]
    fn injected_task_failure_is_retried_and_job_succeeds() {
        let mut cfg = chaos_config();
        cfg.fault_plan = sh_dfs::FaultPlan::none().fail_task(0, 0).fail_task(0, 1);
        let fs = Dfs::new(cfg);
        wordcount_input(&fs, 1000);
        let outcome = JobBuilder::new(&fs, "retry")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 2)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.profile.task_retries, 2, "two injected failures");
        assert_eq!(outcome.counters["task.retries"], 2);
        let mut lines = outcome.read_output(&fs).unwrap();
        lines.sort();
        assert!(lines.contains(&"common 1000".to_string()));
        // Attempt spans exist for the failed and the winning attempt.
        let spans = outcome.profile.spans.as_ref().unwrap();
        assert!(spans.find("map-0/attempt-0").is_some());
        assert!(spans.find("map-0/attempt-2").is_some());
    }

    #[test]
    fn attempts_exhausted_keeps_first_error() {
        let mut cfg = chaos_config();
        cfg.max_task_attempts = 2;
        cfg.fault_plan = sh_dfs::FaultPlan::none()
            .fail_task(0, 0)
            .fail_task(0, 1)
            .fail_task(1, 0)
            .fail_task(1, 1);
        let fs = Dfs::new(cfg);
        wordcount_input(&fs, 2000);
        let err = JobBuilder::new(&fs, "doomed")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 1)
            .output("/out")
            .build()
            .unwrap()
            .run();
        match err {
            Err(JobError::TaskFailed(msg)) => {
                assert!(msg.contains("injected fault"), "{msg}");
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn repeated_failures_blacklist_the_node() {
        let mut cfg = chaos_config();
        cfg.node_blacklist_threshold = 1;
        // Kill node 0 at the wave boundary: every task scheduled there
        // fails once, the node is blacklisted, the DFS re-replicates.
        cfg.fault_plan = sh_dfs::FaultPlan::none().kill_node(0);
        let fs = Dfs::new(cfg);
        wordcount_input(&fs, 3000);
        let outcome = JobBuilder::new(&fs, "blacklist")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 2)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(
            outcome.profile.task_retries >= 1,
            "tasks on the killed node must retry: {:?}",
            outcome.profile.task_retries
        );
        assert_eq!(outcome.profile.nodes_blacklisted, 1);
        // Re-replication restored the factor for every surviving block.
        assert_eq!(fs.rereplicate(), 0, "already re-replicated during job");
        let mut lines = outcome.read_output(&fs).unwrap();
        lines.sort();
        assert!(lines.contains(&"common 3000".to_string()));
    }

    #[test]
    fn speculative_backup_beats_injected_straggler() {
        let mut cfg = chaos_config();
        cfg.speculative_execution = true;
        cfg.speculation_threshold_ms = 10;
        // Speculation needs an idle worker while the straggler runs, so
        // don't let a 1-core machine shrink the pool to a single thread.
        cfg.worker_threads = Some(4);
        cfg.fault_plan = sh_dfs::FaultPlan::none().delay_task(0, 2_000);
        let fs = Dfs::new(cfg);
        wordcount_input(&fs, 2000);
        let t0 = Instant::now();
        let outcome = JobBuilder::new(&fs, "speculate")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 2)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(outcome.profile.speculative_launched >= 1);
        assert!(
            outcome.profile.speculative_won >= 1,
            "the undelayed backup must win: {:?}",
            outcome.profile
        );
        assert!(
            t0.elapsed() < Duration::from_millis(1_900),
            "cancelled straggler must not serve out its full delay"
        );
        let mut lines = outcome.read_output(&fs).unwrap();
        lines.sort();
        assert!(lines.contains(&"common 2000".to_string()));
    }

    #[test]
    fn worker_pool_size_is_configurable() {
        let mut cfg = chaos_config();
        cfg.worker_threads = Some(1);
        let fs = Dfs::new(cfg);
        wordcount_input(&fs, 1000);
        let outcome = JobBuilder::new(&fs, "single-threaded")
            .input_file("/in")
            .unwrap()
            .mapper(CountMapper)
            .reducer(SumReducer, 2)
            .output("/out")
            .build()
            .unwrap()
            .run()
            .unwrap();
        let mut lines = outcome.read_output(&fs).unwrap();
        lines.sort();
        assert!(lines.contains(&"common 1000".to_string()));
        // The wave sizes its thread count from the global slot pool:
        // this Dfs was built with worker_threads = 1, so one worker.
        let opts = fs.ft_options();
        assert_eq!(wave_threads(&fs, &opts, 1_000), 1);
        // And the default is uncapped available_parallelism (regression:
        // the pool used to be hard-capped at 8 threads).
        let auto_fs = Dfs::new(chaos_config());
        let auto = wave_threads(&auto_fs, &auto_fs.ft_options(), 1_000);
        let cores = std::thread::available_parallelism().unwrap().get();
        assert_eq!(auto, cores.min(1_000));
        // Resizing worker_threads at runtime resizes the pool.
        fs.update_ft_options(|ft| ft.worker_threads = Some(3));
        assert_eq!(fs.slots().total(), 3);
        assert_eq!(wave_threads(&fs, &fs.ft_options(), 1_000), 3);
    }
}
