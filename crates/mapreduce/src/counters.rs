//! Job counters (Hadoop-style named accumulators).

use std::borrow::Cow;
use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Thread-safe named counters.
///
/// The engine maintains its own bookkeeping counters (`map.*`,
/// `shuffle.*`, `reduce.*`, `output.*`) and user code adds domain counters
/// through the task contexts (e.g. the operations layer counts pruned
/// partitions and early-flushed results — the quantities several of the
/// paper's figures plot).
///
/// Keys are interned as `Cow<'static, str>`: the engine's built-in
/// counters use [`Counters::inc_static`] and never allocate, and dynamic
/// names only allocate on first touch — every subsequent increment hits
/// the existing entry in place.
#[derive(Debug, Default)]
pub struct Counters {
    inner: Mutex<BTreeMap<Cow<'static, str>, u64>>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds `delta` to the named counter. Allocates only the first time a
    /// name is seen.
    pub fn inc(&self, name: &str, delta: u64) {
        let mut map = self.inner.lock();
        if let Some(v) = map.get_mut(name) {
            *v += delta;
        } else {
            map.insert(Cow::Owned(name.to_string()), delta);
        }
    }

    /// Allocation-free increment for static names — the engine's own
    /// `map.*` / `shuffle.*` / `reduce.*` / `output.*` counters.
    pub fn inc_static(&self, name: &'static str, delta: u64) {
        let mut map = self.inner.lock();
        if let Some(v) = map.get_mut(name) {
            *v += delta;
        } else {
            map.insert(Cow::Borrowed(name), delta);
        }
    }

    /// Current value (0 when never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.lock().get(name).copied().unwrap_or(0)
    }

    /// Merges another snapshot into this set.
    pub fn merge(&self, other: &BTreeMap<String, u64>) {
        let mut map = self.inner.lock();
        for (k, v) in other {
            if let Some(slot) = map.get_mut(k.as_str()) {
                *slot += v;
            } else {
                map.insert(Cow::Owned(k.clone()), *v);
            }
        }
    }

    /// Copies all counters.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.inner
            .lock()
            .iter()
            .map(|(k, &v)| (k.clone().into_owned(), v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_get_snapshot() {
        let c = Counters::new();
        c.inc("a", 2);
        c.inc("a", 3);
        c.inc("b", 1);
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("missing"), 0);
        let snap = c.snapshot();
        assert_eq!(snap["a"], 5);
        assert_eq!(snap["b"], 1);
    }

    #[test]
    fn merge_adds() {
        let c = Counters::new();
        c.inc("a", 1);
        let mut other = BTreeMap::new();
        other.insert("a".to_string(), 4);
        other.insert("c".to_string(), 2);
        c.merge(&other);
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("c"), 2);
    }

    #[test]
    fn static_and_dynamic_names_share_one_namespace() {
        let c = Counters::new();
        c.inc_static("map.tasks", 4);
        c.inc("map.tasks", 2); // dynamic spelling of the same key
        c.inc_static("map.tasks", 1);
        assert_eq!(c.get("map.tasks"), 7);
        assert_eq!(c.snapshot()["map.tasks"], 7);
    }
}
