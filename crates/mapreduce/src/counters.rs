//! Job counters (Hadoop-style named accumulators).

use std::collections::BTreeMap;

use parking_lot::Mutex;

/// Thread-safe named counters.
///
/// The engine maintains its own bookkeeping counters (`map.*`,
/// `shuffle.*`, `reduce.*`, `output.*`) and user code adds domain counters
/// through the task contexts (e.g. the operations layer counts pruned
/// partitions and early-flushed results — the quantities several of the
/// paper's figures plot).
#[derive(Debug, Default)]
pub struct Counters {
    inner: Mutex<BTreeMap<String, u64>>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds `delta` to the named counter.
    pub fn inc(&self, name: &str, delta: u64) {
        let mut map = self.inner.lock();
        *map.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value (0 when never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.lock().get(name).copied().unwrap_or(0)
    }

    /// Merges another snapshot into this set.
    pub fn merge(&self, other: &BTreeMap<String, u64>) {
        let mut map = self.inner.lock();
        for (k, v) in other {
            *map.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Copies all counters.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_get_snapshot() {
        let c = Counters::new();
        c.inc("a", 2);
        c.inc("a", 3);
        c.inc("b", 1);
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("missing"), 0);
        let snap = c.snapshot();
        assert_eq!(snap["a"], 5);
        assert_eq!(snap["b"], 1);
    }

    #[test]
    fn merge_adds() {
        let c = Counters::new();
        c.inc("a", 1);
        let mut other = BTreeMap::new();
        other.insert("a".to_string(), 4);
        other.insert("c".to_string(), 2);
        c.merge(&other);
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("c"), 2);
    }
}
