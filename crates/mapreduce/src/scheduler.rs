//! Multi-job scheduler: concurrent job submission over one shared DFS.
//!
//! The JobTracker half that [`crate::executor`] lacks: callers submit
//! closures that run jobs and get a [`JobHandle`] back; the scheduler
//! admits up to a configured number of jobs at a time (FIFO or
//! fair-share across tenants), bounds its queue (admission control —
//! submissions beyond the cap are rejected, which is the back-pressure
//! signal), and relies on the cluster's global
//! [`SlotPool`](sh_dfs::SlotPool) to cap *task* concurrency: admitting
//! four jobs on a four-slot cluster runs four task attempts at a time,
//! not 4 × slots.
//!
//! Observability: `sched.submitted` / `sched.admitted` /
//! `sched.rejected` / `sched.completed` / `sched.failed` counters, the
//! `sched.queue.depth` gauge, and the `sched.wait.micros` histogram
//! (enqueue → admission) in the global trace registry. Per-job profiles
//! stay per-job — each submitted closure returns its own result, so
//! nothing is aggregated across tenants.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use sh_dfs::Dfs;

/// Queueing policy for admission order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict submission order.
    #[default]
    Fifo,
    /// Pick the queued job whose tenant has the fewest running jobs
    /// (ties broken by submission order) — one chatty tenant cannot
    /// starve the rest.
    FairShare,
}

impl SchedPolicy {
    /// Parses `fifo` / `fair` (Pigeon `SET sched_policy`).
    pub fn parse(text: &str) -> Result<SchedPolicy, String> {
        match text.trim().to_ascii_lowercase().as_str() {
            "fifo" => Ok(SchedPolicy::Fifo),
            "fair" | "fairshare" | "fair-share" => Ok(SchedPolicy::FairShare),
            other => Err(format!("unknown scheduling policy '{other}' (fifo|fair)")),
        }
    }
}

impl fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedPolicy::Fifo => write!(f, "fifo"),
            SchedPolicy::FairShare => write!(f, "fair"),
        }
    }
}

/// Admission-control knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedConfig {
    /// Jobs running concurrently (task concurrency is separately capped
    /// by the cluster slot pool).
    pub max_in_flight: usize,
    /// Queued (admitted-but-waiting) jobs before submissions are
    /// rejected with [`SchedError::QueueFull`].
    pub queue_cap: usize,
    /// Admission order.
    pub policy: SchedPolicy,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            max_in_flight: 4,
            queue_cap: 64,
            policy: SchedPolicy::Fifo,
        }
    }
}

/// Submission/join errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedError {
    /// The queue is at its cap — back off and resubmit.
    QueueFull,
    /// The scheduler shut down before the job ran.
    Shutdown,
    /// The job's closure panicked (payload message attached).
    JobPanicked(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::QueueFull => write!(f, "scheduler queue is full"),
            SchedError::Shutdown => write!(f, "scheduler shut down before the job ran"),
            SchedError::JobPanicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Lifecycle of a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    /// Dequeued by [`JobScheduler::cancel`] before it ever ran.
    Cancelled,
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobState::Queued => write!(f, "queued"),
            JobState::Running => write!(f, "running"),
            JobState::Done => write!(f, "done"),
            JobState::Failed => write!(f, "failed"),
            JobState::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// One row of [`JobScheduler::jobs`].
#[derive(Clone, Debug)]
pub struct JobInfo {
    pub id: u64,
    pub name: String,
    pub tenant: String,
    pub state: JobState,
}

/// What a job body hands back: whether it succeeded, plus a deferred
/// delivery action that sends the result to the [`JobHandle`]. Delivery
/// runs *after* the scheduler's completion bookkeeping so a caller that
/// observes `join()` also observes the final [`JobState`].
type JobVerdict = (bool, Box<dyn FnOnce() + Send>);

/// Type-erased job body: runs the user closure and returns its verdict.
type JobFn = Box<dyn FnOnce(&Dfs) -> JobVerdict + Send>;

struct Pending {
    id: u64,
    tenant: String,
    job: JobFn,
    enqueued: Instant,
}

#[derive(Clone)]
struct JobRecord {
    name: String,
    tenant: String,
    state: JobState,
}

struct SchedState {
    queue: VecDeque<Pending>,
    running: usize,
    running_per_tenant: BTreeMap<String, usize>,
    /// Jobs ever admitted per tenant — fair-share's history term, so
    /// tenants round-robin even when nothing is running at pick time.
    admitted_per_tenant: BTreeMap<String, u64>,
    jobs: BTreeMap<u64, JobRecord>,
    next_id: u64,
    shutdown: bool,
}

struct Inner {
    dfs: Dfs,
    cfg: SchedConfig,
    state: Mutex<SchedState>,
    /// Signalled on job completion and shutdown (drain/wait paths).
    cv: Condvar,
}

/// Handle to a submitted job; [`JobHandle::join`] blocks for the result.
pub struct JobHandle<T> {
    /// Scheduler-assigned job id (stable across the scheduler's life).
    pub id: u64,
    rx: mpsc::Receiver<Result<T, SchedError>>,
}

impl<T> JobHandle<T> {
    /// Blocks until the job finishes and returns its result. A closed
    /// channel means the job was discarded by shutdown.
    pub fn join(self) -> Result<T, SchedError> {
        self.rx.recv().unwrap_or(Err(SchedError::Shutdown))
    }

    /// Non-blocking poll: `None` while the job is still queued/running.
    pub fn try_join(&self) -> Option<Result<T, SchedError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(SchedError::Shutdown)),
        }
    }
}

/// The scheduler (see module docs). Cheaply cloneable; all clones share
/// one queue.
#[derive(Clone)]
pub struct JobScheduler {
    inner: Arc<Inner>,
}

impl JobScheduler {
    /// Creates a scheduler over `dfs` with the given admission config.
    pub fn new(dfs: &Dfs, cfg: SchedConfig) -> JobScheduler {
        JobScheduler {
            inner: Arc::new(Inner {
                dfs: dfs.clone(),
                cfg,
                state: Mutex::new(SchedState {
                    queue: VecDeque::new(),
                    running: 0,
                    running_per_tenant: BTreeMap::new(),
                    admitted_per_tenant: BTreeMap::new(),
                    jobs: BTreeMap::new(),
                    next_id: 0,
                    shutdown: false,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// The admission config this scheduler was built with.
    pub fn config(&self) -> SchedConfig {
        self.inner.cfg
    }

    /// Submits a job under the default tenant. The closure runs on a
    /// scheduler thread against the shared DFS; its task waves lease
    /// worker slots from the cluster-wide pool like every other job's.
    pub fn submit<T, F>(&self, name: &str, f: F) -> Result<JobHandle<T>, SchedError>
    where
        T: Send + 'static,
        F: FnOnce(&Dfs) -> T + Send + 'static,
    {
        self.submit_as("default", name, f)
    }

    /// Submits a job on behalf of `tenant` (fair-share balances across
    /// tenants; FIFO ignores them).
    pub fn submit_as<T, F>(
        &self,
        tenant: &str,
        name: &str,
        f: F,
    ) -> Result<JobHandle<T>, SchedError>
    where
        T: Send + 'static,
        F: FnOnce(&Dfs) -> T + Send + 'static,
    {
        let registry = sh_trace::global();
        registry.counter_add("sched.submitted", 1);
        let (tx, rx) = mpsc::channel();
        let job: JobFn = Box::new(move |dfs: &Dfs| {
            let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(dfs)));
            let (ok, result) = match verdict {
                Ok(v) => (true, Ok(v)),
                Err(panic) => (false, Err(SchedError::JobPanicked(panic_text(&panic)))),
            };
            // A dropped handle is fine — the job still ran.
            let deliver = Box::new(move || {
                let _ = tx.send(result);
            });
            (ok, deliver as Box<dyn FnOnce() + Send>)
        });
        let mut st = self.inner.state.lock().expect("scheduler poisoned");
        if st.shutdown {
            registry.counter_add("sched.rejected", 1);
            sh_trace::events::emit(
                "job.rejected",
                vec![
                    ("job", name.to_string()),
                    ("reason", "shutdown".to_string()),
                ],
            );
            return Err(SchedError::Shutdown);
        }
        if st.queue.len() >= self.inner.cfg.queue_cap {
            registry.counter_add("sched.rejected", 1);
            sh_trace::events::emit(
                "job.rejected",
                vec![
                    ("job", name.to_string()),
                    ("reason", "queue_full".to_string()),
                ],
            );
            return Err(SchedError::QueueFull);
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            JobRecord {
                name: name.to_string(),
                tenant: tenant.to_string(),
                state: JobState::Queued,
            },
        );
        sh_trace::events::emit(
            "job.submitted",
            vec![
                ("id", id.to_string()),
                ("job", name.to_string()),
                ("tenant", tenant.to_string()),
            ],
        );
        st.queue.push_back(Pending {
            id,
            tenant: tenant.to_string(),
            job,
            enqueued: Instant::now(),
        });
        registry.gauge_set("sched.queue.depth", st.queue.len() as i64);
        self.inner.pump(st);
        Ok(JobHandle { id, rx })
    }

    /// Snapshot of every job this scheduler has seen, by id.
    pub fn jobs(&self) -> Vec<JobInfo> {
        let st = self.inner.state.lock().expect("scheduler poisoned");
        st.jobs
            .iter()
            .map(|(&id, r)| JobInfo {
                id,
                name: r.name.clone(),
                tenant: r.tenant.clone(),
                state: r.state,
            })
            .collect()
    }

    /// State of one job, if it exists.
    pub fn job_state(&self, id: u64) -> Option<JobState> {
        let st = self.inner.state.lock().expect("scheduler poisoned");
        st.jobs.get(&id).map(|r| r.state)
    }

    /// Jobs currently queued (not yet admitted).
    pub fn queue_depth(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("scheduler poisoned")
            .queue
            .len()
    }

    /// Jobs currently running.
    pub fn running(&self) -> usize {
        self.inner.state.lock().expect("scheduler poisoned").running
    }

    /// Cancels a still-queued job: it is dequeued without running and
    /// its handle observes [`SchedError::Shutdown`]. Returns `false` if
    /// the job already started (running jobs run to completion — task
    /// waves own cluster state that must settle) or never existed. This
    /// is the disconnect path for network sessions: a client that goes
    /// away while its statement waits in the queue must not hold a queue
    /// slot against live sessions.
    pub fn cancel(&self, id: u64) -> bool {
        let mut st = self.inner.state.lock().expect("scheduler poisoned");
        let Some(pos) = st.queue.iter().position(|p| p.id == id) else {
            return false;
        };
        let pending = st.queue.remove(pos).expect("index from position");
        if let Some(r) = st.jobs.get_mut(&id) {
            r.state = JobState::Cancelled;
        }
        let registry = sh_trace::global();
        registry.counter_add("sched.cancelled", 1);
        registry.gauge_set("sched.queue.depth", st.queue.len() as i64);
        sh_trace::events::emit(
            "job.cancelled",
            vec![("id", id.to_string()), ("tenant", pending.tenant.clone())],
        );
        drop(st);
        // Dropping the pending closure drops its result sender, so a
        // joiner (if any survives the disconnect) observes Shutdown.
        drop(pending);
        self.inner.cv.notify_all();
        true
    }

    /// Blocks until every queued and running job has finished.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().expect("scheduler poisoned");
        while st.running > 0 || !st.queue.is_empty() {
            st = self.inner.cv.wait(st).expect("scheduler poisoned");
        }
    }

    /// Rejects future submissions and discards queued jobs (their
    /// handles observe [`SchedError::Shutdown`]); running jobs finish.
    pub fn shutdown(&self) {
        let mut st = self.inner.state.lock().expect("scheduler poisoned");
        st.shutdown = true;
        let dropped: Vec<Pending> = st.queue.drain(..).collect();
        for p in &dropped {
            if let Some(r) = st.jobs.get_mut(&p.id) {
                r.state = JobState::Failed;
            }
        }
        sh_trace::global().gauge_set("sched.queue.depth", 0);
        drop(st);
        // Dropping the pending closures drops their result senders.
        drop(dropped);
        self.inner.cv.notify_all();
    }
}

impl Inner {
    /// Admits queued jobs while capacity allows; called with the state
    /// lock held (and consumes it — admission spawns threads outside).
    fn pump(self: &Arc<Self>, mut st: std::sync::MutexGuard<'_, SchedState>) {
        let registry = sh_trace::global();
        let mut spawn = Vec::new();
        while st.running < self.cfg.max_in_flight {
            let Some(idx) = pick_next(&st, self.cfg.policy) else {
                break;
            };
            let pending = st.queue.remove(idx).expect("index from pick_next");
            st.running += 1;
            *st.running_per_tenant
                .entry(pending.tenant.clone())
                .or_insert(0) += 1;
            *st.admitted_per_tenant
                .entry(pending.tenant.clone())
                .or_insert(0) += 1;
            if let Some(r) = st.jobs.get_mut(&pending.id) {
                r.state = JobState::Running;
            }
            registry.counter_add("sched.admitted", 1);
            registry.observe(
                "sched.wait.micros",
                pending.enqueued.elapsed().as_micros() as u64,
            );
            sh_trace::events::emit(
                "job.admitted",
                vec![
                    ("id", pending.id.to_string()),
                    ("tenant", pending.tenant.clone()),
                    (
                        "wait_micros",
                        (pending.enqueued.elapsed().as_micros() as u64).to_string(),
                    ),
                ],
            );
            spawn.push(pending);
        }
        registry.gauge_set("sched.queue.depth", st.queue.len() as i64);
        drop(st);
        for pending in spawn {
            let inner = Arc::clone(self);
            std::thread::spawn(move || {
                let (ok, deliver) = (pending.job)(&inner.dfs);
                let registry = sh_trace::global();
                registry.counter_add(
                    if ok {
                        "sched.completed"
                    } else {
                        "sched.failed"
                    },
                    1,
                );
                sh_trace::events::emit(
                    if ok { "job.completed" } else { "job.failed" },
                    vec![
                        ("id", pending.id.to_string()),
                        ("tenant", pending.tenant.clone()),
                    ],
                );
                let mut st = inner.state.lock().expect("scheduler poisoned");
                st.running -= 1;
                if let Some(n) = st.running_per_tenant.get_mut(&pending.tenant) {
                    *n = n.saturating_sub(1);
                }
                if let Some(r) = st.jobs.get_mut(&pending.id) {
                    r.state = if ok { JobState::Done } else { JobState::Failed };
                }
                inner.cv.notify_all();
                inner.pump(st);
                // Deliver only after the bookkeeping above: a joiner
                // that sees the result also sees the final job state.
                deliver();
            });
        }
    }
}

/// Index of the next queue entry to admit under `policy`.
fn pick_next(st: &SchedState, policy: SchedPolicy) -> Option<usize> {
    if st.queue.is_empty() {
        return None;
    }
    match policy {
        SchedPolicy::Fifo => Some(0),
        SchedPolicy::FairShare => {
            // Fewest running jobs for the tenant, then least historical
            // usage (admissions so far), then submission order —
            // min_by_key keeps the first minimum, so ties are FIFO.
            st.queue
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| {
                    let running = st.running_per_tenant.get(&p.tenant).copied().unwrap_or(0);
                    let admitted = st.admitted_per_tenant.get(&p.tenant).copied().unwrap_or(0);
                    (running, admitted)
                })
                .map(|(i, _)| i)
        }
    }
}

/// Best-effort extraction of a panic payload message.
fn panic_text(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn dfs() -> Dfs {
        Dfs::new(sh_dfs::ClusterConfig::small_for_tests())
    }

    #[test]
    fn submit_and_join_returns_the_closure_result() {
        let fs = dfs();
        let sched = JobScheduler::new(&fs, SchedConfig::default());
        let h = sched
            .submit("write", |dfs| {
                dfs.write_string("/sched/a", "hello\n").unwrap();
                42u64
            })
            .unwrap();
        assert_eq!(h.join().unwrap(), 42);
        assert!(fs.exists("/sched/a"));
        assert_eq!(sched.job_state(0), Some(JobState::Done));
    }

    #[test]
    fn max_in_flight_bounds_concurrent_jobs() {
        let fs = dfs();
        let cfg = SchedConfig {
            max_in_flight: 2,
            ..SchedConfig::default()
        };
        let sched = JobScheduler::new(&fs, cfg);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                sched
                    .submit(&format!("j{i}"), move |_| {
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(10));
                        live.fetch_sub(1, Ordering::SeqCst);
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "admission cap violated");
    }

    #[test]
    fn queue_cap_rejects_with_queue_full() {
        let fs = dfs();
        let cfg = SchedConfig {
            max_in_flight: 1,
            queue_cap: 1,
            ..SchedConfig::default()
        };
        let sched = JobScheduler::new(&fs, cfg);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = sched
            .submit("blocker", move |_| {
                gate_rx.recv().ok();
            })
            .unwrap();
        // Give the blocker time to be admitted, freeing the queue.
        while sched.running() == 0 {
            std::thread::yield_now();
        }
        let queued = sched.submit("queued", |_| {}).unwrap();
        assert!(matches!(
            sched.submit("overflow", |_| {}),
            Err(SchedError::QueueFull)
        ));
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        queued.join().unwrap();
    }

    #[test]
    fn fair_share_interleaves_tenants() {
        let fs = dfs();
        let cfg = SchedConfig {
            max_in_flight: 1,
            queue_cap: 64,
            policy: SchedPolicy::FairShare,
        };
        let sched = JobScheduler::new(&fs, cfg);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        // Hold the single in-flight slot while the queue fills so
        // admission order is decided by the policy, not arrival timing.
        let blocker = sched
            .submit_as("x", "gate", move |_| {
                gate_rx.recv().ok();
            })
            .unwrap();
        let mut handles = Vec::new();
        for (tenant, name) in [("a", "a1"), ("a", "a2"), ("a", "a3"), ("b", "b1")] {
            let order = Arc::clone(&order);
            handles.push(
                sched
                    .submit_as(tenant, name, move |_| {
                        order.lock().unwrap().push(name.to_string());
                    })
                    .unwrap(),
            );
        }
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap().clone();
        // With zero running for both tenants, ties go to submission
        // order (a1), then tenant b's b1 must not wait behind all of
        // tenant a's backlog.
        assert_eq!(order.len(), 4);
        let pos_b = order.iter().position(|n| n == "b1").unwrap();
        assert!(
            pos_b <= 1,
            "fair share must admit b1 before a's backlog drains: {order:?}"
        );
    }

    #[test]
    fn panicking_job_reports_and_scheduler_survives() {
        let fs = dfs();
        let sched = JobScheduler::new(&fs, SchedConfig::default());
        let h = sched
            .submit("boom", |_| -> u32 { panic!("job exploded") })
            .unwrap();
        match h.join() {
            Err(SchedError::JobPanicked(msg)) => assert!(msg.contains("job exploded")),
            other => panic!("expected JobPanicked, got {other:?}"),
        }
        assert_eq!(sched.job_state(0), Some(JobState::Failed));
        // The scheduler still admits new work.
        let h = sched.submit("after", |_| 7u32).unwrap();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn cancel_dequeues_queued_jobs_but_not_running_ones() {
        let fs = dfs();
        let cfg = SchedConfig {
            max_in_flight: 1,
            ..SchedConfig::default()
        };
        let sched = JobScheduler::new(&fs, cfg);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = sched
            .submit("blocker", move |_| {
                gate_rx.recv().ok();
            })
            .unwrap();
        while sched.running() == 0 {
            std::thread::yield_now();
        }
        let queued = sched.submit("doomed", |_| 1u8).unwrap();
        // A running job cannot be cancelled; a queued one can, exactly once.
        assert!(!sched.cancel(blocker.id));
        assert!(sched.cancel(queued.id));
        assert!(!sched.cancel(queued.id));
        assert_eq!(sched.job_state(queued.id), Some(JobState::Cancelled));
        assert_eq!(queued.join(), Err(SchedError::Shutdown));
        // The freed queue slot admits new work.
        let after = sched.submit("after", |_| 7u32).unwrap();
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
        assert_eq!(after.join().unwrap(), 7);
        assert!(!sched.cancel(12345), "unknown ids are not cancellable");
    }

    #[test]
    fn shutdown_discards_queued_jobs() {
        let fs = dfs();
        let cfg = SchedConfig {
            max_in_flight: 1,
            ..SchedConfig::default()
        };
        let sched = JobScheduler::new(&fs, cfg);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let blocker = sched
            .submit("blocker", move |_| {
                gate_rx.recv().ok();
            })
            .unwrap();
        while sched.running() == 0 {
            std::thread::yield_now();
        }
        let queued = sched.submit("never-runs", |_| 1u8).unwrap();
        sched.shutdown();
        assert_eq!(queued.join(), Err(SchedError::Shutdown));
        assert!(matches!(
            sched.submit("late", |_| 2u8),
            Err(SchedError::Shutdown)
        ));
        gate_tx.send(()).unwrap();
        blocker.join().unwrap();
    }

    #[test]
    fn drain_waits_for_everything() {
        let fs = dfs();
        let sched = JobScheduler::new(&fs, SchedConfig::default());
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..6 {
            let done = Arc::clone(&done);
            sched
                .submit(&format!("d{i}"), move |_| {
                    std::thread::sleep(Duration::from_millis(5));
                    done.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        sched.drain();
        assert_eq!(done.load(Ordering::SeqCst), 6);
        assert_eq!(sched.queue_depth(), 0);
        assert_eq!(sched.running(), 0);
    }

    #[test]
    fn real_mapreduce_jobs_share_the_slot_pool() {
        let mut cfg = sh_dfs::ClusterConfig::small_for_tests();
        cfg.worker_threads = Some(2);
        let fs = Dfs::new(cfg);
        let mut w = fs.create("/in").unwrap();
        for i in 0..2000 {
            w.write_line(&format!("w{} common", i % 10));
        }
        w.close().unwrap();
        let sched = JobScheduler::new(&fs, SchedConfig::default());
        let handles: Vec<_> = (0..3)
            .map(|i| {
                sched
                    .submit(&format!("wc{i}"), move |dfs| {
                        use crate::context::{MapContext, ReduceContext};
                        use crate::job::{JobBuilder, Mapper, Reducer};
                        use crate::split::InputSplit;
                        struct M;
                        impl Mapper for M {
                            type K = String;
                            type V = u64;
                            fn map(
                                &self,
                                _s: &InputSplit,
                                data: &str,
                                ctx: &mut MapContext<String, u64>,
                            ) {
                                for t in data.split_whitespace() {
                                    ctx.emit(t.to_string(), 1);
                                }
                            }
                        }
                        struct R;
                        impl Reducer for R {
                            type K = String;
                            type V = u64;
                            fn reduce(&self, k: &String, vs: Vec<u64>, ctx: &mut ReduceContext) {
                                ctx.output(format!("{k} {}", vs.iter().sum::<u64>()));
                            }
                        }
                        JobBuilder::new(dfs, "wc")
                            .input_file("/in")
                            .unwrap()
                            .mapper(M)
                            .reducer(R, 2)
                            .output(&format!("/out-{i}"))
                            .build()
                            .unwrap()
                            .run()
                            .unwrap()
                    })
                    .unwrap()
            })
            .collect();
        let mut outputs = Vec::new();
        for h in handles {
            let outcome = h.join().unwrap();
            let mut lines = outcome.read_output(&fs).unwrap();
            lines.sort();
            outputs.push(lines);
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]));
        assert!(outputs[0].contains(&"common 2000".to_string()));
        // Three concurrent jobs on a two-slot cluster never ran more
        // than two task attempts at once.
        assert!(
            fs.slots().peak() <= 2,
            "slot pool breached: peak {}",
            fs.slots().peak()
        );
    }
}
