//! Job definition: the mapper/reducer traits and the job builder.

use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use sh_dfs::{Dfs, DfsError};

use crate::context::{MapContext, ReduceContext};
use crate::executor::{self, JobOutcome};
use crate::split::InputSplit;

/// A map function over one input split.
///
/// The engine hands the mapper the *raw text* of its split plus the split
/// metadata; parsing is the mapper's job (SpatialHadoop's record readers
/// live in `sh-core` and are invoked from mapper implementations). This
/// mirrors Hadoop, where the `RecordReader` runs inside the map task, and
/// keeps the measured compute cost honest.
pub trait Mapper: Send + Sync {
    /// Intermediate key type.
    type K: Clone + Ord + Hash + Send + Sync + 'static;
    /// Intermediate value type.
    type V: Clone + Send + Sync + 'static;

    /// Processes one split.
    fn map(&self, split: &InputSplit, data: &str, ctx: &mut MapContext<Self::K, Self::V>);

    /// Processes one split from raw bytes. The engine always enters
    /// through this method; the default decodes UTF-8 and forwards to
    /// [`Mapper::map`], failing the job as corrupt input on non-text
    /// data. Mappers that understand binary blocks override it.
    fn map_bytes(&self, split: &InputSplit, data: &[u8], ctx: &mut MapContext<Self::K, Self::V>) {
        match std::str::from_utf8(data) {
            Ok(text) => self.map(split, text, ctx),
            Err(e) => fail_corrupt(format!("{}: input is not UTF-8 text: {e}", split.path)),
        }
    }
}

/// Panic payload marking a *data* error (corrupt input) rather than an
/// engine bug. The executor downcasts unwound payloads to this type and
/// converts them into [`JobError::CorruptInput`] — failing the job
/// immediately, with no retries (re-reading corrupt bytes cannot
/// succeed).
#[derive(Clone, Debug)]
pub struct CorruptInput(pub String);

/// Fails the current task with a corrupt-input error. Mappers/reducers
/// return `()`, so the error travels as a typed panic payload that the
/// executor's unwind boundary turns into a clean
/// [`JobError::CorruptInput`].
pub fn fail_corrupt(msg: impl Into<String>) -> ! {
    std::panic::panic_any(CorruptInput(msg.into()))
}

/// A reduce function over one key group.
pub trait Reducer: Send + Sync {
    /// Intermediate key type (matches the mapper's).
    type K: Clone + Ord + Hash + Send + Sync + 'static;
    /// Intermediate value type (matches the mapper's).
    type V: Clone + Send + Sync + 'static;

    /// Processes all values of one key.
    fn reduce(&self, key: &Self::K, values: Vec<Self::V>, ctx: &mut ReduceContext);
}

/// Placeholder reducer for map-only jobs; never invoked.
pub struct NoReducer<K, V>(std::marker::PhantomData<fn() -> (K, V)>);

impl<K, V> Default for NoReducer<K, V> {
    fn default() -> Self {
        NoReducer(std::marker::PhantomData)
    }
}

impl<K, V> Reducer for NoReducer<K, V>
where
    K: Clone + Ord + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    type K = K;
    type V = V;

    fn reduce(&self, _key: &K, _values: Vec<V>, _ctx: &mut ReduceContext) {
        unreachable!("NoReducer is only valid for map-only jobs")
    }
}

/// Combiner: runs on the map side per key before the shuffle.
pub type CombinerFn<K, V> = Arc<dyn Fn(&K, Vec<V>) -> Vec<V> + Send + Sync>;

/// Estimates the wire size of an intermediate pair for shuffle-byte
/// accounting.
pub type PairSizeFn<K, V> = Arc<dyn Fn(&K, &V) -> usize + Send + Sync>;

/// Errors from job configuration or execution.
#[derive(Debug)]
pub enum JobError {
    /// Underlying DFS failure (missing input, lost block, ...).
    Dfs(DfsError),
    /// A reducer was configured with zero reduce tasks, or vice versa.
    Config(String),
    /// A map or reduce task panicked (e.g. on corrupt records). The
    /// job fails cleanly instead of aborting the process — Hadoop's
    /// failed-task semantics.
    TaskFailed(String),
    /// A task hit corrupt input data ([`fail_corrupt`]). Deterministic:
    /// the job fails immediately without burning retry attempts.
    CorruptInput(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Dfs(e) => write!(f, "dfs error: {e}"),
            JobError::Config(m) => write!(f, "job configuration error: {m}"),
            JobError::TaskFailed(m) => write!(f, "task failed: {m}"),
            JobError::CorruptInput(m) => write!(f, "corrupt input: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<DfsError> for JobError {
    fn from(e: DfsError) -> Self {
        JobError::Dfs(e)
    }
}

/// A fully-configured MapReduce job, ready to run.
pub struct Job<M: Mapper, R: Reducer<K = M::K, V = M::V>> {
    pub(crate) dfs: Dfs,
    pub(crate) name: String,
    pub(crate) splits: Vec<InputSplit>,
    pub(crate) mapper: M,
    pub(crate) reducer: Option<R>,
    pub(crate) combiner: Option<CombinerFn<M::K, M::V>>,
    pub(crate) num_reducers: usize,
    pub(crate) output: String,
    pub(crate) pair_size: PairSizeFn<M::K, M::V>,
}

impl<M: Mapper, R: Reducer<K = M::K, V = M::V>> Job<M, R> {
    /// Runs the job to completion, writing output part files under the
    /// configured output path.
    pub fn run(self) -> Result<JobOutcome, JobError> {
        executor::run(self)
    }
}

/// Builder for [`Job`].
///
/// ```
/// # use sh_dfs::{Dfs, ClusterConfig};
/// # use sh_mapreduce::{JobBuilder, Mapper, Reducer, MapContext, ReduceContext, InputSplit};
/// struct Tokenize;
/// impl Mapper for Tokenize {
///     type K = String;
///     type V = u64;
///     fn map(&self, _s: &InputSplit, data: &str, ctx: &mut MapContext<String, u64>) {
///         for w in data.split_whitespace() {
///             ctx.emit(w.to_string(), 1);
///         }
///     }
/// }
/// struct Sum;
/// impl Reducer for Sum {
///     type K = String;
///     type V = u64;
///     fn reduce(&self, k: &String, vs: Vec<u64>, ctx: &mut ReduceContext) {
///         ctx.output(format!("{k} {}", vs.iter().sum::<u64>()));
///     }
/// }
/// let dfs = Dfs::new(ClusterConfig::small_for_tests());
/// dfs.write_string("/in", "a b a\n").unwrap();
/// let outcome = JobBuilder::new(&dfs, "wordcount")
///     .input_file("/in").unwrap()
///     .mapper(Tokenize)
///     .reducer(Sum, 2)
///     .output("/out")
///     .build().unwrap()
///     .run().unwrap();
/// let mut text = outcome.read_output(&dfs).unwrap();
/// text.sort();
/// assert_eq!(text, vec!["a 2", "b 1"]);
/// ```
pub struct JobBuilder<M: Mapper> {
    dfs: Dfs,
    name: String,
    splits: Vec<InputSplit>,
    mapper: Option<M>,
    combiner: Option<CombinerFn<M::K, M::V>>,
    output: Option<String>,
    pair_size: PairSizeFn<M::K, M::V>,
}

impl<M: Mapper> JobBuilder<M> {
    /// Starts a job description against `dfs`.
    pub fn new(dfs: &Dfs, name: &str) -> Self {
        JobBuilder {
            dfs: dfs.clone(),
            name: name.to_string(),
            splits: Vec::new(),
            mapper: None,
            combiner: None,
            output: None,
            pair_size: Arc::new(|_, _| std::mem::size_of::<M::K>() + std::mem::size_of::<M::V>()),
        }
    }

    /// Adds default per-block splits for a heap file.
    pub fn input_file(mut self, path: &str) -> Result<Self, JobError> {
        self.splits.extend(InputSplit::from_file(&self.dfs, path)?);
        Ok(self)
    }

    /// Adds pre-computed splits (the SpatialFileSplitter path).
    pub fn input_splits(mut self, splits: Vec<InputSplit>) -> Self {
        self.splits.extend(splits);
        self
    }

    /// Sets the mapper.
    pub fn mapper(mut self, mapper: M) -> Self {
        self.mapper = Some(mapper);
        self
    }

    /// Installs a map-side combiner.
    pub fn combiner(
        mut self,
        f: impl Fn(&M::K, Vec<M::V>) -> Vec<M::V> + Send + Sync + 'static,
    ) -> Self {
        self.combiner = Some(Arc::new(f));
        self
    }

    /// Overrides the shuffle pair-size estimator.
    pub fn pair_size(mut self, f: impl Fn(&M::K, &M::V) -> usize + Send + Sync + 'static) -> Self {
        self.pair_size = Arc::new(f);
        self
    }

    /// Sets the output directory path.
    pub fn output(mut self, path: &str) -> Self {
        self.output = Some(path.to_string());
        self
    }

    /// Finishes a job with a reduce phase.
    pub fn reducer<R: Reducer<K = M::K, V = M::V>>(
        self,
        reducer: R,
        num_reducers: usize,
    ) -> JobBuilderWithReducer<M, R> {
        JobBuilderWithReducer {
            base: self,
            reducer,
            num_reducers,
        }
    }

    /// Finishes a map-only job (output comes from `MapContext::output`).
    #[allow(clippy::type_complexity)]
    pub fn map_only(self) -> Result<Job<M, NoReducer<M::K, M::V>>, JobError> {
        let mapper = self
            .mapper
            .ok_or_else(|| JobError::Config("mapper not set".into()))?;
        let output = self
            .output
            .ok_or_else(|| JobError::Config("output not set".into()))?;
        Ok(Job {
            dfs: self.dfs,
            name: self.name,
            splits: self.splits,
            mapper,
            reducer: None,
            combiner: self.combiner,
            num_reducers: 0,
            output,
            pair_size: self.pair_size,
        })
    }
}

/// Second-stage builder carrying the reducer.
pub struct JobBuilderWithReducer<M: Mapper, R: Reducer<K = M::K, V = M::V>> {
    base: JobBuilder<M>,
    reducer: R,
    num_reducers: usize,
}

impl<M: Mapper, R: Reducer<K = M::K, V = M::V>> JobBuilderWithReducer<M, R> {
    /// Sets the output directory path.
    pub fn output(mut self, path: &str) -> Self {
        self.base.output = Some(path.to_string());
        self
    }

    /// Validates and builds the job.
    pub fn build(self) -> Result<Job<M, R>, JobError> {
        if self.num_reducers == 0 {
            return Err(JobError::Config(
                "reduce job needs at least one reducer".into(),
            ));
        }
        let mapper = self
            .base
            .mapper
            .ok_or_else(|| JobError::Config("mapper not set".into()))?;
        let output = self
            .base
            .output
            .ok_or_else(|| JobError::Config("output not set".into()))?;
        Ok(Job {
            dfs: self.base.dfs,
            name: self.base.name,
            splits: self.base.splits,
            mapper,
            reducer: Some(self.reducer),
            combiner: self.base.combiner,
            num_reducers: self.num_reducers,
            output,
            pair_size: self.base.pair_size,
        })
    }
}
