//! Disjoint-set (union–find) with path compression and union by rank.
//!
//! Used by the polygon-union operation to group transitively-overlapping
//! polygons so each group's union can be computed independently (and in
//! parallel across map tasks).

/// Disjoint-set forest over the integers `0..n`.
#[derive(Clone, Debug)]
pub struct DisjointSet {
    parent: Vec<usize>,
    rank: Vec<u8>,
    groups: usize,
}

impl DisjointSet {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
            rank: vec![0; n],
            groups: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when constructed over zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of distinct sets remaining.
    pub fn group_count(&self) -> usize {
        self.groups
    }

    /// Representative of the set containing `x` (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `true` when they
    /// were previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.groups -= 1;
        true
    }

    /// Groups all elements by representative, in deterministic order of
    /// first appearance.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut order: Vec<Option<usize>> = vec![None; n];
        let mut out: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let r = self.find(i);
            match order[r] {
                Some(g) => out[g].push(i),
                None => {
                    order[r] = Some(out.len());
                    out.push(vec![i]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut d = DisjointSet::new(5);
        assert_eq!(d.group_count(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(3, 4));
        assert!(!d.union(1, 0));
        assert_eq!(d.group_count(), 3);
        assert_eq!(d.find(0), d.find(1));
        assert_ne!(d.find(0), d.find(3));
    }

    #[test]
    fn transitive_grouping() {
        let mut d = DisjointSet::new(6);
        d.union(0, 1);
        d.union(1, 2);
        d.union(4, 5);
        let groups = d.groups();
        assert_eq!(groups, vec![vec![0, 1, 2], vec![3], vec![4, 5]]);
    }

    #[test]
    fn empty_is_fine() {
        let mut d = DisjointSet::new(0);
        assert!(d.is_empty());
        assert!(d.groups().is_empty());
    }
}
