//! Convex hull via Andrew's monotone chain (O(n log n)).

use crate::point::Point;

/// Computes the convex hull of `points`.
///
/// Returns the hull vertices in counter-clockwise order starting from the
/// lexicographically smallest point. Collinear points on hull edges are
/// dropped. Inputs of fewer than three distinct points return the distinct
/// points themselves.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(Point::cmp_xy);
    pts.dedup_by(|a, b| a.approx_eq(b));
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // lower chain
    for p in &pts {
        while hull.len() >= 2
            && Point::cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    // upper chain
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev() {
        while hull.len() >= lower_len
            && Point::cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull.pop(); // last point repeats the first
    hull
}

/// True when `p` lies inside or on the boundary of the convex polygon
/// `hull` (vertices in counter-clockwise order, as produced by
/// [`convex_hull`]).
pub fn hull_contains(hull: &[Point], p: &Point) -> bool {
    match hull.len() {
        0 => false,
        1 => hull[0].approx_eq(p),
        2 => {
            let seg = crate::segment::Segment::new(hull[0], hull[1]);
            let t = seg.project_clamped(p);
            seg.at(t).distance(p) < crate::float::EPS
        }
        n => {
            for i in 0..n {
                if Point::cross(&hull[i], &hull[(i + 1) % n], p) < -crate::float::EPS {
                    return false;
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert_eq!(hull[0], Point::new(0.0, 0.0));
        for p in &pts {
            assert!(hull_contains(&hull, p));
        }
        assert!(!hull_contains(&hull, &Point::new(5.0, 5.0)));
    }

    #[test]
    fn collinear_points_collapse_to_endpoints() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 2);
        assert!(hull_contains(&hull, &Point::new(1.5, 1.5)));
        assert!(!hull_contains(&hull, &Point::new(1.5, 1.6)));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        let single = convex_hull(&[Point::new(1.0, 1.0)]);
        assert_eq!(single.len(), 1);
        assert!(hull_contains(&single, &Point::new(1.0, 1.0)));
        let dup = convex_hull(&[Point::new(1.0, 1.0); 5]);
        assert_eq!(dup.len(), 1);
    }

    #[test]
    fn hull_is_ccw() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(4.0, 4.0),
            Point::new(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        let n = hull.len();
        let mut area2 = 0.0;
        for i in 0..n {
            let p = &hull[i];
            let q = &hull[(i + 1) % n];
            area2 += p.x * q.y - q.x * p.y;
        }
        assert!(area2 > 0.0);
    }
}
