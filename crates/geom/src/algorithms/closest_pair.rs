//! Closest pair of points (divide & conquer, O(n log n)).

use crate::point::Point;

/// A pair of points together with their distance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointPair {
    /// First point of the pair.
    pub a: Point,
    /// Second point of the pair.
    pub b: Point,
    /// Euclidean distance between the two.
    pub distance: f64,
}

impl PointPair {
    /// Builds the pair, computing the distance.
    pub fn new(a: Point, b: Point) -> Self {
        PointPair {
            a,
            b,
            distance: a.distance(&b),
        }
    }

    /// Canonical ordering of endpoints so pairs compare deterministically.
    pub fn canonical(&self) -> PointPair {
        if self.a.cmp_xy(&self.b) == std::cmp::Ordering::Greater {
            PointPair {
                a: self.b,
                b: self.a,
                distance: self.distance,
            }
        } else {
            *self
        }
    }
}

/// Computes the closest pair with the classic divide-and-conquer
/// algorithm. Returns `None` for fewer than two points.
pub fn closest_pair(points: &[Point]) -> Option<PointPair> {
    if points.len() < 2 {
        return None;
    }
    let mut by_x: Vec<Point> = points.to_vec();
    by_x.sort_by(Point::cmp_xy);
    let mut by_y = by_x.clone();
    let mut scratch = Vec::with_capacity(by_y.len());
    let best = recurse(&by_x, &mut by_y, &mut scratch);
    Some(best.canonical())
}

fn recurse(by_x: &[Point], by_y: &mut [Point], scratch: &mut Vec<Point>) -> PointPair {
    let n = by_x.len();
    if n <= 3 {
        // Base case: brute force and re-sort by_y by y for the caller.
        let mut best: Option<PointPair> = None;
        for i in 0..n {
            for j in (i + 1)..n {
                let cand = PointPair::new(by_x[i], by_x[j]);
                if best.is_none_or(|b| cand.distance < b.distance) {
                    best = Some(cand);
                }
            }
        }
        by_y.sort_by(|a, b| a.y.total_cmp(&b.y).then(a.x.total_cmp(&b.x)));
        return best.expect("base case called with >= 2 points");
    }
    let mid = n / 2;
    let mid_x = by_x[mid].x;
    let (left_x, right_x) = by_x.split_at(mid);
    let (left_y, right_y) = by_y.split_at_mut(mid);
    let best_l = recurse(left_x, left_y, scratch);
    let best_r = recurse(right_x, right_y, scratch);
    let mut best = if best_l.distance <= best_r.distance {
        best_l
    } else {
        best_r
    };

    // Merge the two y-sorted halves.
    scratch.clear();
    scratch.extend_from_slice(left_y);
    merge_by_y(left_y, right_y, scratch);
    let merged: &mut [Point] = by_y;

    // Strip check: points within `best.distance` of the dividing line.
    let d = best.distance;
    let mut strip: Vec<Point> = Vec::new();
    for p in merged.iter() {
        if (p.x - mid_x).abs() < d {
            strip.push(*p);
        }
    }
    for i in 0..strip.len() {
        for j in (i + 1)..strip.len() {
            if strip[j].y - strip[i].y >= best.distance {
                break;
            }
            let cand = PointPair::new(strip[i], strip[j]);
            if cand.distance < best.distance {
                best = cand;
            }
        }
    }
    best
}

/// Merges `left` (y-sorted) and `right` (y-sorted) back into the combined
/// slice, using `scratch` which already holds a copy of `left`.
fn merge_by_y(left: &mut [Point], right: &mut [Point], scratch: &[Point]) {
    // SAFETY-free approach: write into a temp vec then copy back.
    let mut merged = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    while i < scratch.len() && j < right.len() {
        let take_left = (scratch[i].y, scratch[i].x) <= (right[j].y, right[j].x);
        if take_left {
            merged.push(scratch[i]);
            i += 1;
        } else {
            merged.push(right[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&scratch[i..]);
    merged.extend_from_slice(&right[j..]);
    let (l, r) = (left.len(), right.len());
    left.copy_from_slice(&merged[..l]);
    right.copy_from_slice(&merged[l..l + r]);
}

/// O(n²) reference implementation for tests.
pub fn closest_pair_naive(points: &[Point]) -> Option<PointPair> {
    let mut best: Option<PointPair> = None;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let cand = PointPair::new(points[i], points[j]);
            if best.is_none_or(|b| cand.distance < b.distance) {
                best = Some(cand);
            }
        }
    }
    best.map(|b| b.canonical())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn obvious_pair() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(10.1, 10.0),
            Point::new(-5.0, 5.0),
        ];
        let pair = closest_pair(&pts).unwrap();
        assert!((pair.distance - 0.1).abs() < 1e-9);
    }

    #[test]
    fn two_points() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        assert_eq!(closest_pair(&pts).unwrap().distance, 5.0);
    }

    #[test]
    fn fewer_than_two_is_none() {
        assert!(closest_pair(&[]).is_none());
        assert!(closest_pair(&[Point::new(1.0, 1.0)]).is_none());
    }

    #[test]
    fn duplicates_give_zero_distance() {
        let pts = vec![
            Point::new(1.0, 1.0),
            Point::new(5.0, 5.0),
            Point::new(1.0, 1.0),
        ];
        assert_eq!(closest_pair(&pts).unwrap().distance, 0.0);
    }

    #[test]
    fn pair_crossing_the_median_is_found() {
        // Closest pair straddles the dividing line.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 5.0),
            Point::new(4.9, 2.0),
            Point::new(5.1, 2.0),
            Point::new(9.0, 9.0),
            Point::new(10.0, 0.0),
        ];
        let pair = closest_pair(&pts).unwrap();
        assert!((pair.distance - 0.2).abs() < 1e-9);
    }

    #[test]
    fn matches_naive_on_random_sets() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [2usize, 3, 5, 17, 64, 257] {
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let fast = closest_pair(&pts).unwrap();
            let slow = closest_pair_naive(&pts).unwrap();
            assert!(
                (fast.distance - slow.distance).abs() < 1e-9,
                "n={n}: {} vs {}",
                fast.distance,
                slow.distance
            );
        }
    }
}
