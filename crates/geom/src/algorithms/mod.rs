//! Single-machine computational-geometry algorithms.
//!
//! These are the "traditional algorithm" building blocks that both the
//! single-machine baselines and the local-processing steps of the
//! distributed operations share. Each submodule also carries a naive
//! (brute-force) reference implementation used in tests and property
//! tests.

pub mod closest_pair;
pub mod convex_hull;
pub mod delaunay;
pub mod farthest_pair;
pub mod plane_sweep;
pub mod skyline;
pub mod union;
pub mod voronoi;
