//! Max-max skyline (maximal points).

use crate::point::Point;

/// Computes the max-max skyline of `points`: the subset not dominated by
/// any other point, where `p` dominates `q` iff `p.x >= q.x && p.y >= q.y`
/// with strict inequality somewhere.
///
/// Runs in O(n log n): sort by `x` descending (ties by `y` descending) and
/// keep a running maximum of `y`. Result is ordered by increasing `x`
/// (hence decreasing `y`), which is the order the distributed merge step
/// relies on.
pub fn skyline(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| b.cmp_xy(a));
    let mut out: Vec<Point> = Vec::new();
    let mut best_y = f64::NEG_INFINITY;
    let mut i = 0;
    while i < pts.len() {
        // Among equal x, only the largest y can be on the skyline.
        let x = pts[i].x;
        let candidate = pts[i];
        while i < pts.len() && pts[i].x == x {
            i += 1;
        }
        if candidate.y > best_y {
            out.push(candidate);
            best_y = candidate.y;
        }
    }
    out.reverse();
    out
}

/// Merges several skylines (each already a skyline of its own subset)
/// into the skyline of the union. Used by the global step of the
/// distributed skyline operation.
pub fn merge_skylines(parts: &[Vec<Point>]) -> Vec<Point> {
    let all: Vec<Point> = parts.iter().flatten().copied().collect();
    skyline(&all)
}

/// O(n²) reference implementation for tests.
pub fn skyline_naive(points: &[Point]) -> Vec<Point> {
    let mut out: Vec<Point> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .copied()
        .collect();
    out.sort_by(Point::cmp_xy);
    out.dedup_by(|a, b| a.approx_eq(b));
    out
}

/// True when no point of `set` dominates `p`.
pub fn not_dominated(p: &Point, set: &[Point]) -> bool {
    !set.iter().any(|q| q.dominates(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_staircase() {
        let pts = vec![
            Point::new(1.0, 5.0),
            Point::new(2.0, 3.0),
            Point::new(3.0, 4.0),
            Point::new(4.0, 1.0),
            Point::new(0.5, 0.5),
        ];
        let sky = skyline(&pts);
        assert_eq!(
            sky,
            vec![
                Point::new(1.0, 5.0),
                Point::new(3.0, 4.0),
                Point::new(4.0, 1.0)
            ]
        );
    }

    #[test]
    fn matches_naive_on_fixed_set() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.5),
            Point::new(0.5, 2.0),
            Point::new(1.0, 1.0),
        ];
        let mut fast = skyline(&pts);
        fast.sort_by(Point::cmp_xy);
        assert_eq!(fast, skyline_naive(&pts));
    }

    #[test]
    fn duplicates_and_equal_x() {
        let pts = vec![
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(1.0, 3.0),
        ];
        assert_eq!(skyline(&pts), vec![Point::new(1.0, 3.0)]);
    }

    #[test]
    fn single_and_empty() {
        assert!(skyline(&[]).is_empty());
        assert_eq!(skyline(&[Point::new(1.0, 1.0)]), vec![Point::new(1.0, 1.0)]);
    }

    #[test]
    fn merge_equals_global() {
        let a = vec![Point::new(1.0, 4.0), Point::new(3.0, 2.0)];
        let b = vec![Point::new(2.0, 5.0), Point::new(4.0, 1.0)];
        let merged = merge_skylines(&[skyline(&a), skyline(&b)]);
        let mut all = a.clone();
        all.extend(&b);
        assert_eq!(merged, skyline(&all));
    }

    #[test]
    fn anti_correlated_keeps_everything() {
        // Points on the line x + y = 10 dominate nothing pairwise.
        let pts: Vec<Point> = (0..10)
            .map(|i| Point::new(i as f64, 10.0 - i as f64))
            .collect();
        assert_eq!(skyline(&pts).len(), 10);
    }
}
