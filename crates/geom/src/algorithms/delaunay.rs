//! Delaunay triangulation via incremental Bowyer–Watson insertion.
//!
//! This powers the Voronoi-diagram operation: Voronoi cells are read off
//! as the dual of the triangulation, and the *one-ring* Delaunay
//! neighbours of a site bound the set of sites that can influence its
//! Voronoi cell — the property the distributed merge step exploits.
//!
//! Implementation notes:
//!
//! * three *super vertices* far outside the data bounding box close the
//!   triangulation so every real site has a full fan of incident
//!   triangles (sites on the data hull get fans through super triangles,
//!   which marks their cells unbounded);
//! * point location walks from the most recently created triangle and
//!   falls back to a linear scan if the walk degenerates, so insertion is
//!   near O(n) on Morton-ordered input and never incorrect;
//! * the in-circumcircle predicate evaluates the 3×3 determinant in
//!   coordinates relative to the query point for numerical headroom.

use crate::point::Point;
use crate::rect::mbr_of_points;

/// A triangle of the output triangulation, as indices into the site list.
pub type TriangleIx = [usize; 3];

#[derive(Clone, Debug)]
struct Tri {
    /// Vertex indices, counter-clockwise.
    v: [usize; 3],
    /// `n[i]` is the triangle across the edge opposite `v[i]`
    /// (i.e. the edge `v[i+1] -> v[i+2]`).
    n: [Option<usize>; 3],
    alive: bool,
}

/// Result of a Delaunay triangulation over a set of distinct sites.
#[derive(Clone, Debug)]
pub struct Triangulation {
    sites: Vec<Point>,
    /// All points: sites followed by the 3 super vertices.
    pts: Vec<Point>,
    tris: Vec<Tri>,
    /// Indices of alive triangles (including super triangles).
    alive: Vec<usize>,
}

impl Triangulation {
    /// Triangulates `sites`.
    ///
    /// Sites must be distinct ([`crate::point::sort_dedup`] upstream);
    /// fewer than 3 sites or fully collinear input yields a triangulation
    /// with no real triangles, which the Voronoi layer treats as
    /// "all cells unbounded".
    pub fn build(sites: &[Point]) -> Triangulation {
        let sites: Vec<Point> = sites.to_vec();
        let n = sites.len();
        let mut pts = sites.clone();
        // Super triangle: generous margin around the data MBR.
        let bbox = mbr_of_points(&sites);
        let (cx, cy, span) = if bbox.is_empty() {
            (0.0, 0.0, 1.0)
        } else {
            let c = bbox.center();
            (c.x, c.y, bbox.width().max(bbox.height()).max(1.0))
        };
        let m = span * 1e4;
        pts.push(Point::new(cx - 3.0 * m, cy - m));
        pts.push(Point::new(cx + 3.0 * m, cy - m));
        pts.push(Point::new(cx, cy + 3.0 * m));
        let mut t = Triangulation {
            sites,
            pts,
            tris: Vec::with_capacity(2 * n + 8),
            alive: Vec::new(),
        };
        t.tris.push(Tri {
            v: [n, n + 1, n + 2],
            n: [None, None, None],
            alive: true,
        });
        // Insert in Morton order for walk locality.
        let mut order: Vec<usize> = (0..n).collect();
        if !bbox.is_empty() && bbox.area() > 0.0 {
            order.sort_by_key(|&i| {
                let p = &t.pts[i];
                let qx = (((p.x - bbox.x1) / bbox.width().max(1e-12)) * 65535.0) as u32;
                let qy = (((p.y - bbox.y1) / bbox.height().max(1e-12)) * 65535.0) as u32;
                interleave(qx.min(65535), qy.min(65535))
            });
        }
        let mut last = 0usize;
        for i in order {
            last = t.insert(i, last);
        }
        t.alive = (0..t.tris.len()).filter(|&i| t.tris[i].alive).collect();
        t
    }

    /// The input sites.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// Number of real sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Real triangles (no super vertices), each counter-clockwise.
    pub fn triangles(&self) -> Vec<TriangleIx> {
        let n = self.num_sites();
        self.alive
            .iter()
            .map(|&t| self.tris[t].v)
            .filter(|v| v.iter().all(|&x| x < n))
            .collect()
    }

    /// All alive triangles including those touching super vertices;
    /// indices `>= num_sites()` denote super vertices. The Voronoi layer
    /// uses these to detect unbounded cells.
    pub fn triangles_with_super(&self) -> Vec<TriangleIx> {
        self.alive.iter().map(|&t| self.tris[t].v).collect()
    }

    /// Coordinates of any point index appearing in
    /// [`Triangulation::triangles_with_super`].
    pub fn coords(&self, ix: usize) -> Point {
        self.pts[ix]
    }

    /// One-ring Delaunay neighbours of every real site (real sites only).
    ///
    /// `result[i]` is sorted and deduplicated. The one-ring bounds which
    /// sites can share a Voronoi edge with site `i`, which is what the
    /// distributed Voronoi merge ships alongside non-final sites.
    pub fn neighbor_rings(&self) -> Vec<Vec<usize>> {
        let n = self.num_sites();
        let mut rings: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &ti in &self.alive {
            let v = self.tris[ti].v;
            for i in 0..3 {
                let a = v[i];
                let b = v[(i + 1) % 3];
                if a < n && b < n {
                    rings[a].push(b);
                    rings[b].push(a);
                }
            }
        }
        for ring in &mut rings {
            ring.sort_unstable();
            ring.dedup();
        }
        rings
    }

    /// Inserts point index `pi`, returns a triangle index to start the
    /// next walk from.
    fn insert(&mut self, pi: usize, start: usize) -> usize {
        let p = self.pts[pi];
        let t0 = self.locate(&p, start);
        // Grow the cavity: all triangles whose circumcircle contains p.
        let mut cavity: Vec<usize> = Vec::new();
        let mut mark: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut stack = vec![t0];
        mark.insert(t0);
        while let Some(t) = stack.pop() {
            cavity.push(t);
            for k in 0..3 {
                if let Some(nb) = self.tris[t].n[k] {
                    if !mark.contains(&nb) && self.in_circumcircle(nb, &p) {
                        mark.insert(nb);
                        stack.push(nb);
                    }
                }
            }
        }
        // Boundary edges of the cavity, directed CCW (interior on left).
        let mut boundary: Vec<(usize, usize, Option<usize>)> = Vec::new();
        for &t in &cavity {
            let v = self.tris[t].v;
            for k in 0..3 {
                let nb = self.tris[t].n[k];
                let is_inner = nb.is_some_and(|nb| mark.contains(&nb));
                if !is_inner {
                    boundary.push((v[(k + 1) % 3], v[(k + 2) % 3], nb));
                }
            }
        }
        for &t in &cavity {
            self.tris[t].alive = false;
        }
        // Re-triangulate: one new triangle per boundary edge.
        let first_new = self.tris.len();
        let mut edge_to_tri: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::with_capacity(boundary.len());
        for (a, b, outer) in &boundary {
            let idx = self.tris.len();
            // Neighbor slots: opposite v[0]=a is edge (b, pi); opposite
            // v[1]=b is (pi, a); opposite v[2]=pi is (a, b) = outer.
            self.tris.push(Tri {
                v: [*a, *b, pi],
                n: [None, None, *outer],
                alive: true,
            });
            // Fix the outer triangle's back-pointer.
            if let Some(o) = *outer {
                let ot = &mut self.tris[o];
                for k in 0..3 {
                    let oa = ot.v[(k + 1) % 3];
                    let ob = ot.v[(k + 2) % 3];
                    if (oa == *b && ob == *a) || (oa == *a && ob == *b) {
                        ot.n[k] = Some(idx);
                    }
                }
            }
            edge_to_tri.insert(*a, idx); // keyed by the edge start vertex
            let _ = first_new;
        }
        // Link new triangles around pi: triangle with edge (a, b) has the
        // triangle starting at `b` across its (b, pi) edge, and the
        // triangle ending at `a` across its (pi, a) edge.
        let new_tris: Vec<(usize, usize, usize)> = boundary
            .iter()
            .enumerate()
            .map(|(i, (a, b, _))| (first_new + i, *a, *b))
            .collect();
        for (idx, _a, b) in &new_tris {
            if let Some(&next) = edge_to_tri.get(b) {
                // Edge (b, pi) of `idx` == edge (pi, b) of `next`.
                self.tris[*idx].n[0] = Some(next); // opposite v[0]=a is (b, pi)
                self.tris[next].n[1] = Some(*idx); // opposite v[1]=b' (=b) is (pi, a'=b)
            }
        }
        first_new
    }

    /// Walks toward `p` starting at triangle `start`.
    fn locate(&self, p: &Point, start: usize) -> usize {
        let mut t = start;
        if !self.tris[t].alive {
            t = match (0..self.tris.len()).rev().find(|&i| self.tris[i].alive) {
                Some(i) => i,
                None => unreachable!("triangulation always has alive triangles"),
            };
        }
        let mut steps = 0usize;
        let cap = 4 * self.tris.len() + 16;
        loop {
            steps += 1;
            if steps > cap {
                break; // degenerate walk; fall back to scan
            }
            let v = self.tris[t].v;
            let mut moved = false;
            for k in 0..3 {
                let a = self.pts[v[(k + 1) % 3]];
                let b = self.pts[v[(k + 2) % 3]];
                if Point::cross(&a, &b, p) < -1e-12 {
                    match self.tris[t].n[k] {
                        Some(nb) if self.tris[nb].alive => {
                            t = nb;
                            moved = true;
                            break;
                        }
                        _ => {}
                    }
                }
            }
            if !moved {
                return t;
            }
        }
        // Fallback: linear scan for a triangle containing p.
        for (i, tri) in self.tris.iter().enumerate() {
            if !tri.alive {
                continue;
            }
            let [a, b, c] = tri.v.map(|x| self.pts[x]);
            if Point::cross(&a, &b, p) >= -1e-12
                && Point::cross(&b, &c, p) >= -1e-12
                && Point::cross(&c, &a, p) >= -1e-12
            {
                return i;
            }
        }
        // Last resort: any alive triangle whose circumcircle contains p.
        (0..self.tris.len())
            .find(|&i| self.tris[i].alive && self.in_circumcircle(i, p))
            .expect("point lies in the super triangle by construction")
    }

    fn in_circumcircle(&self, t: usize, p: &Point) -> bool {
        let [a, b, c] = self.tris[t].v.map(|x| self.pts[x]);
        in_circle(&a, &b, &c, p)
    }
}

/// In-circumcircle predicate: is `p` strictly inside the circumcircle of
/// the counter-clockwise triangle `(a, b, c)`?
pub fn in_circle(a: &Point, b: &Point, c: &Point, p: &Point) -> bool {
    let ax = a.x - p.x;
    let ay = a.y - p.y;
    let bx = b.x - p.x;
    let by = b.y - p.y;
    let cx = c.x - p.x;
    let cy = c.y - p.y;
    let det = (ax * ax + ay * ay) * (bx * cy - cx * by) - (bx * bx + by * by) * (ax * cy - cx * ay)
        + (cx * cx + cy * cy) * (ax * by - bx * ay);
    det > 0.0
}

/// Circumcenter of the triangle `(a, b, c)`; `None` when degenerate.
pub fn circumcenter(a: &Point, b: &Point, c: &Point) -> Option<Point> {
    let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
    if d.abs() < 1e-12 {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    Some(Point::new(ux, uy))
}

fn interleave(x: u32, y: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut v = v as u64;
        v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
        v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    spread(x) | (spread(y) << 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::sort_dedup;
    use rand::prelude::*;

    fn random_sites(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        sort_dedup(&mut pts);
        pts
    }

    #[test]
    fn single_triangle() {
        let sites = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 8.0),
        ];
        let t = Triangulation::build(&sites);
        assert_eq!(t.triangles().len(), 1);
    }

    #[test]
    fn square_gives_two_triangles() {
        let sites = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let t = Triangulation::build(&sites);
        assert_eq!(t.triangles().len(), 2);
    }

    #[test]
    fn triangle_count_matches_euler() {
        // For n sites with h on the hull: triangles = 2n - h - 2.
        let sites = random_sites(200, 42);
        let t = Triangulation::build(&sites);
        let hull = crate::algorithms::convex_hull::convex_hull(&sites);
        assert_eq!(t.triangles().len(), 2 * sites.len() - hull.len() - 2);
    }

    #[test]
    fn empty_circumcircle_property() {
        let sites = random_sites(120, 7);
        let t = Triangulation::build(&sites);
        for tri in t.triangles() {
            let [a, b, c] = tri.map(|i| sites[i]);
            for (k, p) in sites.iter().enumerate() {
                if tri.contains(&k) {
                    continue;
                }
                assert!(
                    !in_circle(&a, &b, &c, p),
                    "site {k} inside circumcircle of {tri:?}"
                );
            }
        }
    }

    #[test]
    fn all_triangles_ccw() {
        let sites = random_sites(80, 3);
        let t = Triangulation::build(&sites);
        for tri in t.triangles() {
            let [a, b, c] = tri.map(|i| sites[i]);
            assert!(Point::cross(&a, &b, &c) > 0.0);
        }
    }

    #[test]
    fn neighbor_rings_are_symmetric() {
        let sites = random_sites(100, 9);
        let t = Triangulation::build(&sites);
        let rings = t.neighbor_rings();
        for (i, ring) in rings.iter().enumerate() {
            assert!(!ring.is_empty());
            for &j in ring {
                assert!(rings[j].contains(&i), "asymmetric ring {i} <-> {j}");
            }
        }
    }

    #[test]
    fn degenerate_inputs_yield_no_triangles() {
        assert!(Triangulation::build(&[]).triangles().is_empty());
        assert!(Triangulation::build(&[Point::new(1.0, 1.0)])
            .triangles()
            .is_empty());
        let collinear: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        assert!(Triangulation::build(&collinear).triangles().is_empty());
    }

    #[test]
    fn circumcenter_equidistant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let c = Point::new(0.0, 4.0);
        let cc = circumcenter(&a, &b, &c).unwrap();
        assert!(cc.approx_eq(&Point::new(2.0, 2.0)));
        let (da, db, dc) = (cc.distance(&a), cc.distance(&b), cc.distance(&c));
        assert!((da - db).abs() < 1e-9 && (db - dc).abs() < 1e-9);
    }
}
