//! Plane-sweep rectangle join.
//!
//! The local-processing kernel of both spatial-join variants (SJMR and the
//! distributed join): given two sets of rectangles, report every
//! intersecting pair. Sorting both sets by `x1` and sweeping keeps the
//! inner scan bounded by the overlap in `x`, giving O(n log n + k·avg)
//! behaviour that vastly outperforms the nested loop on realistic data.

use crate::rect::Rect;

/// Reports every intersecting pair `(i, j)` of `left[i]`/`right[j]` as
/// index pairs, via plane sweep along the x-axis.
pub fn plane_sweep_join(left: &[Rect], right: &[Rect]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    plane_sweep_join_into(left, right, |i, j| out.push((i, j)));
    out
}

/// Plane-sweep join driving a callback instead of materializing pairs;
/// the distributed join uses this to stream results to the job output.
pub fn plane_sweep_join_into<F: FnMut(usize, usize)>(left: &[Rect], right: &[Rect], mut emit: F) {
    let mut li: Vec<usize> = (0..left.len()).collect();
    let mut ri: Vec<usize> = (0..right.len()).collect();
    li.sort_by(|&a, &b| left[a].x1.total_cmp(&left[b].x1));
    ri.sort_by(|&a, &b| right[a].x1.total_cmp(&right[b].x1));
    let (mut i, mut j) = (0usize, 0usize);
    while i < li.len() && j < ri.len() {
        let l = &left[li[i]];
        let r = &right[ri[j]];
        if l.x1 <= r.x1 {
            // `l` is the sweep leader: scan right rectangles starting in
            // [l.x1, l.x2].
            let mut jj = j;
            while jj < ri.len() && right[ri[jj]].x1 <= l.x2 {
                if l.intersects(&right[ri[jj]]) {
                    emit(li[i], ri[jj]);
                }
                jj += 1;
            }
            i += 1;
        } else {
            let mut ii = i;
            while ii < li.len() && left[li[ii]].x1 <= r.x2 {
                if left[li[ii]].intersects(r) {
                    emit(li[ii], ri[j]);
                }
                ii += 1;
            }
            j += 1;
        }
    }
}

/// Self-join variant: all intersecting unordered pairs `(i, j)`, `i < j`,
/// within one set. Used by the polygon-union grouping step.
pub fn plane_sweep_self_join(rects: &[Rect]) -> Vec<(usize, usize)> {
    let mut idx: Vec<usize> = (0..rects.len()).collect();
    idx.sort_by(|&a, &b| rects[a].x1.total_cmp(&rects[b].x1));
    let mut out = Vec::new();
    for a in 0..idx.len() {
        let ra = &rects[idx[a]];
        for b in (a + 1)..idx.len() {
            let rb = &rects[idx[b]];
            if rb.x1 > ra.x2 {
                break;
            }
            if ra.intersects(rb) {
                let (i, j) = (idx[a].min(idx[b]), idx[a].max(idx[b]));
                out.push((i, j));
            }
        }
    }
    out
}

/// O(n·m) reference join for tests.
pub fn nested_loop_join(left: &[Rect], right: &[Rect]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, l) in left.iter().enumerate() {
        for (j, r) in right.iter().enumerate() {
            if l.intersects(r) {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn sorted(mut v: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn small_fixed_join() {
        let left = vec![Rect::new(0.0, 0.0, 2.0, 2.0), Rect::new(5.0, 5.0, 6.0, 6.0)];
        let right = vec![
            Rect::new(1.0, 1.0, 3.0, 3.0),
            Rect::new(10.0, 10.0, 11.0, 11.0),
            Rect::new(5.5, 0.0, 5.6, 9.0),
        ];
        assert_eq!(
            sorted(plane_sweep_join(&left, &right)),
            vec![(0, 0), (1, 2)]
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(plane_sweep_join(&[], &[Rect::new(0.0, 0.0, 1.0, 1.0)]).is_empty());
        assert!(plane_sweep_join(&[Rect::new(0.0, 0.0, 1.0, 1.0)], &[]).is_empty());
    }

    #[test]
    fn matches_nested_loop_on_random_sets() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let gen = |rng: &mut StdRng, n: usize| -> Vec<Rect> {
                (0..n)
                    .map(|_| {
                        let x = rng.gen_range(0.0..100.0);
                        let y = rng.gen_range(0.0..100.0);
                        Rect::new(
                            x,
                            y,
                            x + rng.gen_range(0.1..10.0),
                            y + rng.gen_range(0.1..10.0),
                        )
                    })
                    .collect()
            };
            let left = gen(&mut rng, 40);
            let right = gen(&mut rng, 60);
            assert_eq!(
                sorted(plane_sweep_join(&left, &right)),
                sorted(nested_loop_join(&left, &right))
            );
        }
    }

    #[test]
    fn self_join_matches_nested_loop() {
        let mut rng = StdRng::seed_from_u64(5);
        let rects: Vec<Rect> = (0..50)
            .map(|_| {
                let x = rng.gen_range(0.0..50.0);
                let y = rng.gen_range(0.0..50.0);
                Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.1..8.0),
                    y + rng.gen_range(0.1..8.0),
                )
            })
            .collect();
        let mut expected = Vec::new();
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                if rects[i].intersects(&rects[j]) {
                    expected.push((i, j));
                }
            }
        }
        assert_eq!(sorted(plane_sweep_self_join(&rects)), sorted(expected));
    }
}
