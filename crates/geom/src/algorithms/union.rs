//! Boundary union of simple polygons.
//!
//! The union of a set of polygons is represented by its *boundary
//! segments*: every piece of polygon edge that has the union's interior on
//! exactly one side. Emitting segments instead of stitched result polygons
//! is exactly what lets the enhanced distributed union run without a
//! single-machine merge step — each machine can emit the part of the
//! boundary inside its own partition independently.
//!
//! Algorithm (per group of transitively-overlapping polygons):
//!
//! 1. split every edge at its intersections with edges of other polygons
//!    in the group,
//! 2. classify each sub-segment by probing the two points just left and
//!    right of its midpoint: the sub-segment is on the union boundary iff
//!    exactly one side is covered by some polygon of the group.
//!
//! Grouping uses a disjoint-set over the overlap graph so that disjoint
//! clusters never pay each other's quadratic cost — the same *grouping*
//! heuristic the paper's single-machine baseline applies.

use crate::algorithms::plane_sweep::plane_sweep_self_join;
use crate::dsu::DisjointSet;
use crate::float::EPS;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::segment::Segment;

/// Probe offset used to sample just off an edge midpoint. Must be
/// comfortably larger than [`EPS`] (so the probe point escapes the
/// boundary band of `Polygon::contains_point`) yet small enough not to
/// cross neighbouring edges of realistic data (polygon features in the
/// generated workloads are ≥ 1e-1 across).
const PROBE: f64 = 20.0 * EPS;

/// Computes the boundary union of `polys` as a set of segments.
///
/// The result is deterministic (ordered by polygon, then edge, then
/// sub-segment). Disjoint polygons contribute their full perimeter.
pub fn boundary_union(polys: &[Polygon]) -> Vec<Segment> {
    let mut out = Vec::new();
    for group in overlap_groups(polys) {
        union_group(polys, &group, &mut out);
    }
    out
}

/// Groups polygon indices into transitively-overlapping clusters.
pub fn overlap_groups(polys: &[Polygon]) -> Vec<Vec<usize>> {
    let mbrs: Vec<_> = polys.iter().map(Polygon::mbr).collect();
    let mut dsu = DisjointSet::new(polys.len());
    for (i, j) in plane_sweep_self_join(&mbrs) {
        if dsu.find(i) != dsu.find(j) && polys[i].intersects(&polys[j]) {
            dsu.union(i, j);
        }
    }
    dsu.groups()
}

fn union_group(polys: &[Polygon], group: &[usize], out: &mut Vec<Segment>) {
    if group.len() == 1 {
        out.extend(polys[group[0]].edges());
        return;
    }
    for (gi, &pi) in group.iter().enumerate() {
        let poly = &polys[pi];
        for edge in poly.edges() {
            // Collect split parameters from intersections with all *other*
            // polygons of the group.
            let mut ts: Vec<f64> = vec![0.0, 1.0];
            let edge_mbr = edge.mbr().buffer(EPS);
            for (gj, &pj) in group.iter().enumerate() {
                if gi == gj {
                    continue;
                }
                let other = &polys[pj];
                if !edge_mbr.intersects(&other.mbr()) {
                    continue;
                }
                for oe in other.edges() {
                    if let Some(x) = edge.intersection(&oe) {
                        ts.push(edge.project_clamped(&x));
                    }
                }
            }
            ts.sort_by(f64::total_cmp);
            for w in ts.windows(2) {
                let (t0, t1) = (w[0], w[1]);
                if t1 - t0 < 1e-12 {
                    continue;
                }
                let sub = Segment::new(edge.at(t0), edge.at(t1));
                if sub.length() < EPS {
                    continue;
                }
                if on_union_boundary(&sub, polys, group) {
                    out.push(sub);
                }
            }
        }
    }
}

/// True iff exactly one side of the sub-segment's midpoint is inside the
/// union of the group's polygons.
fn on_union_boundary(sub: &Segment, polys: &[Polygon], group: &[usize]) -> bool {
    let m = sub.midpoint();
    let (nx, ny) = sub.unit_normal();
    let probe = PROBE * sub.length().max(1.0);
    let left = Point::new(m.x + nx * probe, m.y + ny * probe);
    let right = Point::new(m.x - nx * probe, m.y - ny * probe);
    let covered = |p: &Point| group.iter().any(|&k| polys[k].contains_point(p));
    covered(&left) != covered(&right)
}

/// Total length of a segment bag — a cheap, order-independent fingerprint
/// used to compare distributed results against the single-machine result.
pub fn total_length(segments: &[Segment]) -> f64 {
    segments.iter().map(Segment::length).sum()
}

/// A region of the plane described by its boundary segments (the output
/// of [`boundary_union`] over some polygon subset).
///
/// This is what one machine's *local union* step produces. The merge step
/// of the distributed union never sees the original polygons again — it
/// unions these regions directly, using ray-casting parity against the
/// segment bag for point-in-region tests.
#[derive(Clone, Debug, Default)]
pub struct SegmentRegion {
    /// Boundary segments (closed region boundary; orientation-free).
    pub segments: Vec<Segment>,
}

impl SegmentRegion {
    /// Creates a region from its boundary bag.
    pub fn new(segments: Vec<Segment>) -> SegmentRegion {
        SegmentRegion { segments }
    }

    /// Even-odd containment test by ray casting toward +x.
    ///
    /// `p` must not lie on the boundary (the union probes are offset off
    /// the boundary before calling this).
    pub fn contains(&self, p: &Point) -> bool {
        let mut inside = false;
        for s in &self.segments {
            let (a, b) = (s.a, s.b);
            if (a.y > p.y) != (b.y > p.y) {
                let t = (p.y - a.y) / (b.y - a.y);
                let x_cross = a.x + t * (b.x - a.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
        }
        inside
    }
}

/// Unions several regions into one boundary-segment bag.
///
/// The global merge step of the distributed union: each machine sends the
/// boundary of its local union; a sub-segment survives iff exactly one
/// side of it is inside the union of all regions. Identical duplicate
/// segments (a boundary produced identically by two regions) are reported
/// once.
pub fn union_regions(regions: &[SegmentRegion]) -> Vec<Segment> {
    if regions.len() == 1 {
        return regions[0].segments.clone();
    }
    let mut out: Vec<Segment> = Vec::new();
    let mut seen: std::collections::HashSet<(i64, i64, i64, i64)> =
        std::collections::HashSet::new();
    let covered = |p: &Point| regions.iter().any(|r| r.contains(p));
    for (ri, region) in regions.iter().enumerate() {
        for edge in &region.segments {
            let mut ts: Vec<f64> = vec![0.0, 1.0];
            let edge_mbr = edge.mbr().buffer(EPS);
            for (rj, other) in regions.iter().enumerate() {
                if ri == rj {
                    continue;
                }
                for oe in &other.segments {
                    if !edge_mbr.intersects(&oe.mbr()) {
                        continue;
                    }
                    if let Some(x) = edge.intersection(oe) {
                        ts.push(edge.project_clamped(&x));
                    }
                }
            }
            ts.sort_by(f64::total_cmp);
            for w in ts.windows(2) {
                let (t0, t1) = (w[0], w[1]);
                if t1 - t0 < 1e-12 {
                    continue;
                }
                let sub = Segment::new(edge.at(t0), edge.at(t1));
                if sub.length() < EPS {
                    continue;
                }
                let m = sub.midpoint();
                let (nx, ny) = sub.unit_normal();
                let probe = PROBE * sub.length().max(1.0);
                let left = Point::new(m.x + nx * probe, m.y + ny * probe);
                let right = Point::new(m.x - nx * probe, m.y - ny * probe);
                if covered(&left) != covered(&right) {
                    // Deduplicate segments shared verbatim by two regions.
                    let c = sub.canonical();
                    let q = |v: f64| (v * 1e7).round() as i64;
                    if seen.insert((q(c.a.x), q(c.a.y), q(c.b.x), q(c.b.y))) {
                        out.push(sub);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn square(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::from_rect(&Rect::new(x, y, x + side, y + side))
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn disjoint_polygons_keep_full_perimeter() {
        let polys = vec![square(0.0, 0.0, 1.0), square(5.0, 5.0, 2.0)];
        let segs = boundary_union(&polys);
        assert!(close(total_length(&segs), 4.0 + 8.0));
    }

    #[test]
    fn two_overlapping_squares() {
        // Unit squares offset by 0.5: union boundary length = 2 * (4 * 1) -
        // 2*(perimeter of 0.5x0.5 overlap kept? compute directly):
        // Union is an L-ish octagon with perimeter 6.0.
        let polys = vec![square(0.0, 0.0, 1.0), square(0.5, 0.5, 1.0)];
        let segs = boundary_union(&polys);
        assert!(close(total_length(&segs), 6.0), "{}", total_length(&segs));
    }

    #[test]
    fn adjacent_squares_drop_shared_edge() {
        // Two unit squares sharing the edge x=1: union is a 2x1 rectangle
        // with perimeter 6; the shared edge must vanish.
        let polys = vec![square(0.0, 0.0, 1.0), square(1.0, 0.0, 1.0)];
        let segs = boundary_union(&polys);
        assert!(close(total_length(&segs), 6.0), "{}", total_length(&segs));
        for s in &segs {
            // No remaining segment may lie on the interior shared edge.
            let m = s.midpoint();
            assert!(
                !(close(m.x, 1.0) && m.y > EPS && m.y < 1.0 - EPS),
                "shared edge survived: {s}"
            );
        }
    }

    #[test]
    fn contained_polygon_disappears() {
        let polys = vec![square(0.0, 0.0, 10.0), square(4.0, 4.0, 1.0)];
        let segs = boundary_union(&polys);
        assert!(close(total_length(&segs), 40.0), "{}", total_length(&segs));
    }

    #[test]
    fn three_by_one_strip() {
        // Three unit squares in a row: union 3x1 rect, perimeter 8.
        let polys = vec![
            square(0.0, 0.0, 1.0),
            square(1.0, 0.0, 1.0),
            square(2.0, 0.0, 1.0),
        ];
        let segs = boundary_union(&polys);
        assert!(close(total_length(&segs), 8.0), "{}", total_length(&segs));
    }

    #[test]
    fn grouping_separates_disjoint_clusters() {
        let polys = vec![
            square(0.0, 0.0, 1.0),
            square(0.5, 0.5, 1.0),
            square(10.0, 10.0, 1.0),
        ];
        let groups = overlap_groups(&polys);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0, 1]);
        assert_eq!(groups[1], vec![2]);
    }

    #[test]
    fn region_union_matches_polygon_union() {
        // Split six polygons into two "machines", union each locally,
        // then merge the regions: total boundary length must match the
        // single-machine union of all six.
        let polys: Vec<Polygon> = vec![
            square(0.0, 0.0, 2.0),
            square(1.0, 1.0, 2.0),
            square(10.0, 10.0, 1.0),
            square(1.5, 0.5, 2.0),
            square(10.5, 10.5, 1.0),
            square(20.0, 20.0, 3.0),
        ];
        let global = boundary_union(&polys);
        let left = SegmentRegion::new(boundary_union(&polys[..3]));
        let right = SegmentRegion::new(boundary_union(&polys[3..]));
        let merged = union_regions(&[left, right]);
        assert!(
            close(total_length(&merged), total_length(&global)),
            "merged {} vs global {}",
            total_length(&merged),
            total_length(&global)
        );
    }

    #[test]
    fn region_contains_by_parity() {
        let region = SegmentRegion::new(boundary_union(&[square(0.0, 0.0, 2.0)]));
        assert!(region.contains(&Point::new(1.0, 1.0)));
        assert!(!region.contains(&Point::new(3.0, 1.0)));
        // Concave union region (two overlapping squares).
        let region = SegmentRegion::new(boundary_union(&[
            square(0.0, 0.0, 2.0),
            square(1.0, 1.0, 2.0),
        ]));
        assert!(region.contains(&Point::new(2.5, 2.5)));
        assert!(region.contains(&Point::new(0.5, 0.5)));
        assert!(!region.contains(&Point::new(2.5, 0.5)));
    }

    #[test]
    fn single_region_passthrough() {
        let segs = boundary_union(&[square(0.0, 0.0, 1.0)]);
        let merged = union_regions(&[SegmentRegion::new(segs.clone())]);
        assert_eq!(merged.len(), segs.len());
    }

    #[test]
    fn cross_shape_union() {
        // Horizontal 3x1 and vertical 1x3 bar crossing at the center:
        // plus-sign with perimeter 16 (12 unit edges... compute: the plus
        // shape made of 5 unit cells has perimeter 12).
        let polys = vec![
            Polygon::from_rect(&Rect::new(0.0, 1.0, 3.0, 2.0)),
            Polygon::from_rect(&Rect::new(1.0, 0.0, 2.0, 3.0)),
        ];
        let segs = boundary_union(&polys);
        assert!(close(total_length(&segs), 12.0), "{}", total_length(&segs));
    }
}
