//! Voronoi diagram as the dual of the Delaunay triangulation, with the
//! *safe region* (dangerous zone) test used by the distributed Voronoi
//! construction.
//!
//! A Voronoi cell is **safe** within a partition rectangle when no site
//! added *outside* the partition could ever change it. By the duality with
//! Delaunay triangulation, the cell of site `g` changes iff a new site
//! lands inside one of the circumcircles of `g`'s incident Delaunay
//! triangles — the union of those circles is the cell's *dangerous zone*.
//! If the dangerous zone lies entirely inside the partition rectangle (and
//! the partitioning is disjoint, so no new site can appear inside), the
//! cell is final and can be flushed to the output early.

use crate::algorithms::delaunay::{circumcenter, Triangulation};
use crate::point::Point;
use crate::rect::Rect;

/// One Voronoi cell.
#[derive(Clone, Debug)]
pub struct VoronoiCell {
    /// The generating site.
    pub site: Point,
    /// Index of the site in the input order of [`VoronoiDiagram::build`].
    pub site_ix: usize,
    /// Cell vertices (circumcenters of incident Delaunay triangles) in
    /// counter-clockwise order. Empty for unbounded cells.
    pub vertices: Vec<Point>,
    /// False when the cell extends to infinity (site on the data hull).
    pub bounded: bool,
}

impl VoronoiCell {
    /// Safe-region test: `true` iff the cell is bounded and its dangerous
    /// zone (one circle per cell vertex, centred at the vertex and passing
    /// through the site) lies entirely inside `partition`.
    pub fn is_safe(&self, partition: &Rect) -> bool {
        if !self.bounded {
            return false;
        }
        self.vertices.iter().all(|v| {
            let r = v.distance(&self.site);
            v.x - r >= partition.x1
                && v.x + r <= partition.x2
                && v.y - r >= partition.y1
                && v.y + r <= partition.y2
        })
    }

    /// Approximate area of a bounded cell (shoelace over its vertices).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        if !self.bounded || n < 3 {
            return f64::INFINITY;
        }
        let mut acc = 0.0;
        for i in 0..n {
            let p = &self.vertices[i];
            let q = &self.vertices[(i + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        (acc / 2.0).abs()
    }
}

/// The Voronoi diagram of a set of sites.
#[derive(Clone, Debug)]
pub struct VoronoiDiagram {
    /// One cell per input site, in input order.
    pub cells: Vec<VoronoiCell>,
}

impl VoronoiDiagram {
    /// Builds the diagram from distinct sites via Delaunay duality.
    pub fn build(sites: &[Point]) -> VoronoiDiagram {
        let tri = Triangulation::build(sites);
        Self::from_triangulation(&tri)
    }

    /// Builds the diagram from an existing triangulation (lets callers
    /// reuse the triangulation for neighbour rings).
    pub fn from_triangulation(tri: &Triangulation) -> VoronoiDiagram {
        let n = tri.num_sites();
        let sites = tri.sites();
        // Incident triangles per site, over *all* alive triangles so that
        // hull sites are detected through their super-vertex triangles.
        let all = tri.triangles_with_super();
        let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut touches_super = vec![false; n];
        for (t, v) in all.iter().enumerate() {
            let has_super = v.iter().any(|&x| x >= n);
            for &x in v {
                if x < n {
                    if has_super {
                        touches_super[x] = true;
                    } else {
                        incident[x].push(t);
                    }
                }
            }
        }
        let mut cells = Vec::with_capacity(n);
        for i in 0..n {
            let site = sites[i];
            if touches_super[i] || incident[i].is_empty() {
                cells.push(VoronoiCell {
                    site,
                    site_ix: i,
                    vertices: Vec::new(),
                    bounded: false,
                });
                continue;
            }
            // Circumcenters of incident triangles, ordered by angle
            // around the site; interior sites have a full closed fan so
            // angular order equals fan order.
            let mut verts: Vec<Point> = incident[i]
                .iter()
                .filter_map(|&t| {
                    let [a, b, c] = all[t].map(|x| tri.coords(x));
                    circumcenter(&a, &b, &c)
                })
                .collect();
            if verts.len() < 3 {
                cells.push(VoronoiCell {
                    site,
                    site_ix: i,
                    vertices: Vec::new(),
                    bounded: false,
                });
                continue;
            }
            verts.sort_by(|p, q| {
                let ap = (p.y - site.y).atan2(p.x - site.x);
                let aq = (q.y - site.y).atan2(q.x - site.x);
                ap.total_cmp(&aq)
            });
            cells.push(VoronoiCell {
                site,
                site_ix: i,
                vertices: verts,
                bounded: true,
            });
        }
        VoronoiDiagram { cells }
    }

    /// Number of cells (= number of sites).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when built over no sites.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Canonical fingerprint of a cell for cross-implementation comparison:
/// the site plus the sorted multiset of vertex coordinates, quantized.
pub fn cell_fingerprint(cell: &VoronoiCell) -> (i64, i64, Vec<(i64, i64)>, bool) {
    let q = |v: f64| (v * 1e6).round() as i64;
    let mut verts: Vec<(i64, i64)> = cell.vertices.iter().map(|p| (q(p.x), q(p.y))).collect();
    verts.sort_unstable();
    verts.dedup();
    (q(cell.site.x), q(cell.site.y), verts, cell.bounded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::sort_dedup;
    use rand::prelude::*;

    fn random_sites(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        sort_dedup(&mut pts);
        pts
    }

    #[test]
    fn five_point_plus() {
        // Four corner sites and one center site: the center cell is the
        // bounded square between them.
        let sites = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(1.0, 1.0),
        ];
        let vd = VoronoiDiagram::build(&sites);
        let center = vd.cells.iter().find(|c| c.site == sites[4]).unwrap();
        assert!(center.bounded);
        assert!((center.area() - 2.0).abs() < 1e-6, "{}", center.area());
        for c in &vd.cells {
            if c.site_ix != 4 {
                assert!(!c.bounded, "corner site must be unbounded");
            }
        }
    }

    #[test]
    fn hull_sites_are_unbounded() {
        let sites = random_sites(60, 21);
        let hull = crate::algorithms::convex_hull::convex_hull(&sites);
        let vd = VoronoiDiagram::build(&sites);
        for c in &vd.cells {
            if hull.iter().any(|h| h.approx_eq(&c.site)) {
                assert!(!c.bounded);
            }
        }
    }

    #[test]
    fn bounded_cells_contain_their_site_region() {
        // The centroid of a bounded cell must have its own site as the
        // nearest site (the defining property of a Voronoi cell).
        let sites = random_sites(150, 5);
        let vd = VoronoiDiagram::build(&sites);
        let mut bounded_seen = 0;
        for c in &vd.cells {
            if !c.bounded {
                continue;
            }
            bounded_seen += 1;
            let n = c.vertices.len() as f64;
            let cx = c.vertices.iter().map(|p| p.x).sum::<f64>() / n;
            let cy = c.vertices.iter().map(|p| p.y).sum::<f64>() / n;
            let centroid = Point::new(cx, cy);
            let nearest = sites
                .iter()
                .min_by(|a, b| {
                    a.distance_sq(&centroid)
                        .total_cmp(&b.distance_sq(&centroid))
                })
                .unwrap();
            assert!(
                nearest.approx_eq(&c.site),
                "centroid of cell {} closer to {} than to {}",
                c.site_ix,
                nearest,
                c.site
            );
        }
        assert!(bounded_seen > 50, "expected mostly bounded cells");
    }

    #[test]
    fn cell_vertices_equidistant_to_site_and_neighbors() {
        // Every cell vertex is a circumcenter: its distance to the cell's
        // site equals its distance to (at least) two other sites.
        let sites = random_sites(80, 13);
        let vd = VoronoiDiagram::build(&sites);
        for c in vd.cells.iter().filter(|c| c.bounded) {
            for v in &c.vertices {
                let d0 = v.distance(&c.site);
                let equal = sites
                    .iter()
                    .filter(|s| (v.distance(s) - d0).abs() < 1e-6)
                    .count();
                assert!(equal >= 3, "vertex {v} equidistant to only {equal} sites");
            }
        }
    }

    #[test]
    fn safety_requires_margin() {
        let sites = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(1.0, 1.0),
        ];
        let vd = VoronoiDiagram::build(&sites);
        let center = vd.cells.iter().find(|c| c.site_ix == 4).unwrap();
        // Dangerous zone of the center cell: circles of radius sqrt(2)
        // around (1,0),(2,1),(1,2),(0,1) — contained in a rect with margin.
        assert!(center.is_safe(&Rect::new(-2.0, -2.0, 4.0, 4.0)));
        // Tight partition: dangerous zone pokes outside.
        assert!(!center.is_safe(&Rect::new(0.0, 0.0, 2.0, 2.0)));
        // Unbounded cells are never safe.
        assert!(!vd.cells[0].is_safe(&Rect::new(-100.0, -100.0, 100.0, 100.0)));
    }

    #[test]
    fn safe_cells_survive_outside_additions() {
        // Adding sites outside the partition must not change safe cells.
        let sites = random_sites(120, 33);
        let partition = Rect::new(200.0, 200.0, 800.0, 800.0);
        let inside: Vec<Point> = sites
            .iter()
            .copied()
            .filter(|p| partition.contains_point(p))
            .collect();
        let vd_local = VoronoiDiagram::build(&inside);
        let safe: Vec<&VoronoiCell> = vd_local
            .cells
            .iter()
            .filter(|c| c.is_safe(&partition))
            .collect();
        assert!(!safe.is_empty(), "test needs at least one safe cell");
        // Global diagram over all sites.
        let vd_global = VoronoiDiagram::build(&sites);
        for s in &safe {
            let g = vd_global
                .cells
                .iter()
                .find(|c| c.site.approx_eq(&s.site))
                .unwrap();
            assert_eq!(
                cell_fingerprint(g),
                cell_fingerprint(s),
                "safe cell changed after adding outside sites"
            );
        }
    }
}
