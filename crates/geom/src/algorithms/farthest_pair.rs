//! Farthest pair (diameter) via rotating calipers over the convex hull.

use crate::algorithms::closest_pair::PointPair;
use crate::algorithms::convex_hull::convex_hull;
use crate::point::Point;

/// Computes the farthest pair of `points`.
///
/// The diameter endpoints necessarily lie on the convex hull, so the
/// algorithm computes the hull (O(n log n)) and then walks antipodal
/// vertex pairs with rotating calipers (O(h)). Returns `None` for fewer
/// than two distinct points.
pub fn farthest_pair(points: &[Point]) -> Option<PointPair> {
    let hull = convex_hull(points);
    farthest_pair_on_hull(&hull)
}

/// Rotating calipers over an already-computed convex hull
/// (counter-clockwise vertex order, as [`convex_hull`] produces).
pub fn farthest_pair_on_hull(hull: &[Point]) -> Option<PointPair> {
    let n = hull.len();
    match n {
        0 | 1 => None,
        2 => Some(PointPair::new(hull[0], hull[1]).canonical()),
        _ => {
            let mut best = PointPair::new(hull[0], hull[1]);
            let mut j = 1;
            for i in 0..n {
                let next_i = (i + 1) % n;
                // Advance j while the triangle area (distance from edge
                // i->next_i) keeps growing: antipodal point for this edge.
                loop {
                    let next_j = (j + 1) % n;
                    let cur = Point::cross(&hull[i], &hull[next_i], &hull[j]).abs();
                    let nxt = Point::cross(&hull[i], &hull[next_i], &hull[next_j]).abs();
                    if nxt > cur {
                        j = next_j;
                    } else {
                        break;
                    }
                }
                for q in [hull[j], hull[(j + 1) % n]] {
                    let cand = PointPair::new(hull[i], q);
                    if cand.distance > best.distance {
                        best = cand;
                    }
                }
            }
            Some(best.canonical())
        }
    }
}

/// O(n²) reference implementation for tests.
pub fn farthest_pair_naive(points: &[Point]) -> Option<PointPair> {
    let mut best: Option<PointPair> = None;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let cand = PointPair::new(points[i], points[j]);
            if best.is_none_or(|b| cand.distance > b.distance) {
                best = Some(cand);
            }
        }
    }
    best.map(|b| b.canonical())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn square_diagonal() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5),
        ];
        let pair = farthest_pair(&pts).unwrap();
        assert!((pair.distance - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let pair = farthest_pair(&pts).unwrap();
        assert_eq!(pair.distance, 4.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(farthest_pair(&[]).is_none());
        assert!(farthest_pair(&[Point::new(1.0, 1.0)]).is_none());
        // All identical points collapse to a single hull vertex.
        assert!(farthest_pair(&[Point::new(1.0, 1.0); 4]).is_none());
    }

    #[test]
    fn matches_naive_on_random_sets() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 3, 8, 50, 200] {
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
                .collect();
            let fast = farthest_pair(&pts).unwrap();
            let slow = farthest_pair_naive(&pts).unwrap();
            assert!(
                (fast.distance - slow.distance).abs() < 1e-9,
                "n={n}: {} vs {}",
                fast.distance,
                slow.distance
            );
        }
    }

    #[test]
    fn circular_data_worst_case() {
        // Points on a circle: the hull is everything; diameter ~ 2r.
        let pts: Vec<Point> = (0..360)
            .map(|d| {
                let a = (d as f64).to_radians();
                Point::new(100.0 * a.cos(), 100.0 * a.sin())
            })
            .collect();
        let pair = farthest_pair(&pts).unwrap();
        assert!((pair.distance - 200.0).abs() < 0.1);
    }
}
