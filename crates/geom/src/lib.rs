//! # sh-geom — computational-geometry substrate for SpatialHadoop-rs
//!
//! This crate provides the geometric primitives (points, rectangles,
//! segments, simple polygons) and the classic single-machine computational
//! geometry algorithms that the SpatialHadoop operations layer builds on:
//!
//! * [`algorithms::convex_hull`] — Andrew's monotone chain,
//! * [`algorithms::skyline`] — max-max skyline (maximal points),
//! * [`algorithms::closest_pair`] — divide & conquer closest pair,
//! * [`algorithms::farthest_pair`] — rotating calipers over the hull,
//! * [`algorithms::delaunay`] / [`algorithms::voronoi`] — Bowyer–Watson
//!   Delaunay triangulation and its Voronoi dual with the *safe region*
//!   (dangerous zone) test used by the distributed Voronoi construction,
//! * [`algorithms::union`] — boundary union of simple polygons,
//! * [`algorithms::plane_sweep`] — rectangle/MBR spatial join.
//!
//! Everything is deterministic, allocation-conscious `f64` geometry with an
//! explicit epsilon policy (see [`float`]). All public types implement the
//! line-oriented [`text::Record`] encoding used by the simulated DFS, so
//! that the MapReduce record readers in `sh-core` can parse them back.

pub mod algorithms;
pub mod dsu;
pub mod float;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod segment;
pub mod text;

pub use point::Point;
pub use polygon::Polygon;
pub use rect::Rect;
pub use segment::Segment;
pub use text::{ParseError, Record};
