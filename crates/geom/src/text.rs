//! Line-oriented record encoding.
//!
//! SpatialHadoop stores datasets as text files in HDFS — one record per
//! line — and every MapReduce job re-parses its input split. We reproduce
//! that: the simulated DFS stores raw bytes, and the record readers in
//! `sh-core` parse them through this [`Record`] trait, so the measured
//! per-record CPU cost includes realistic parse work.
//!
//! Formats (whitespace-separated decimal fields):
//!
//! * `Point`   — `x y`
//! * `Rect`    — `x1 y1 x2 y2`
//! * `Segment` — `S x1 y1 x2 y2`
//! * `Polygon` — `P n x1 y1 x2 y2 ... xn yn`

use std::fmt::Write as _;

use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;
use crate::segment::Segment;

/// Error produced when a line cannot be parsed as the expected record type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description including the offending fragment.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "record parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// A spatial record that can be stored in (and parsed back from) a text
/// file in the simulated DFS.
pub trait Record: Clone + Send + Sync + 'static {
    /// Minimum bounding rectangle — the only thing the indexing layer
    /// needs to know about a record.
    fn mbr(&self) -> Rect;

    /// Appends the single-line encoding (without trailing newline).
    fn write_line(&self, out: &mut String);

    /// Parses a line previously produced by [`Record::write_line`].
    fn parse_line(line: &str) -> Result<Self, ParseError>;

    /// Convenience: the encoded line as an owned string.
    fn to_line(&self) -> String {
        let mut s = String::new();
        self.write_line(&mut s);
        s
    }

    /// Columnar kind tag for the binary block format (`0` = point,
    /// `1` = rect), or `None` when the type has no fixed-width columnar
    /// form (segments, polygons, tagged records stay text-only).
    const BINARY_KIND: Option<u8> = None;

    /// Number of `f64` coordinate columns in the columnar form.
    fn ncols() -> usize {
        0
    }

    /// Appends this record's coordinates to the per-column builders.
    fn push_cols(&self, _cols: &mut [Vec<f64>]) {}

    /// Reconstructs record `i` from decoded coordinate columns.
    fn from_cols(_cols: &[&[f64]], _i: usize) -> Self {
        unreachable!("record type has no columnar form")
    }
}

fn parse_f64(tok: Option<&str>, what: &str) -> Result<f64, ParseError> {
    let tok = tok.ok_or_else(|| ParseError::new(format!("missing field: {what}")))?;
    let v: f64 = tok
        .parse()
        .map_err(|_| ParseError::new(format!("bad {what}: {tok:?}")))?;
    if !v.is_finite() {
        return Err(ParseError::new(format!("non-finite {what}: {tok:?}")));
    }
    Ok(v)
}

impl Record for Point {
    fn mbr(&self) -> Rect {
        self.to_rect()
    }

    fn write_line(&self, out: &mut String) {
        let _ = write!(out, "{} {}", self.x, self.y);
    }

    fn parse_line(line: &str) -> Result<Self, ParseError> {
        let mut it = line.split_ascii_whitespace();
        let x = parse_f64(it.next(), "x")?;
        let y = parse_f64(it.next(), "y")?;
        if it.next().is_some() {
            return Err(ParseError::new(format!(
                "trailing fields in point: {line:?}"
            )));
        }
        Ok(Point::new(x, y))
    }

    const BINARY_KIND: Option<u8> = Some(0);

    fn ncols() -> usize {
        2
    }

    fn push_cols(&self, cols: &mut [Vec<f64>]) {
        cols[0].push(self.x);
        cols[1].push(self.y);
    }

    fn from_cols(cols: &[&[f64]], i: usize) -> Self {
        Point::new(cols[0][i], cols[1][i])
    }
}

impl Record for Rect {
    fn mbr(&self) -> Rect {
        *self
    }

    fn write_line(&self, out: &mut String) {
        let _ = write!(out, "{} {} {} {}", self.x1, self.y1, self.x2, self.y2);
    }

    fn parse_line(line: &str) -> Result<Self, ParseError> {
        let mut it = line.split_ascii_whitespace();
        let x1 = parse_f64(it.next(), "x1")?;
        let y1 = parse_f64(it.next(), "y1")?;
        let x2 = parse_f64(it.next(), "x2")?;
        let y2 = parse_f64(it.next(), "y2")?;
        if it.next().is_some() {
            return Err(ParseError::new(format!(
                "trailing fields in rect: {line:?}"
            )));
        }
        Ok(Rect::new(x1, y1, x2, y2))
    }

    const BINARY_KIND: Option<u8> = Some(1);

    fn ncols() -> usize {
        4
    }

    fn push_cols(&self, cols: &mut [Vec<f64>]) {
        cols[0].push(self.x1);
        cols[1].push(self.y1);
        cols[2].push(self.x2);
        cols[3].push(self.y2);
    }

    fn from_cols(cols: &[&[f64]], i: usize) -> Self {
        Rect::new(cols[0][i], cols[1][i], cols[2][i], cols[3][i])
    }
}

impl Record for Segment {
    fn mbr(&self) -> Rect {
        Segment::mbr(self)
    }

    fn write_line(&self, out: &mut String) {
        let _ = write!(out, "S {} {} {} {}", self.a.x, self.a.y, self.b.x, self.b.y);
    }

    fn parse_line(line: &str) -> Result<Self, ParseError> {
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("S") => {}
            other => return Err(ParseError::new(format!("expected 'S' tag, got {other:?}"))),
        }
        let ax = parse_f64(it.next(), "ax")?;
        let ay = parse_f64(it.next(), "ay")?;
        let bx = parse_f64(it.next(), "bx")?;
        let by = parse_f64(it.next(), "by")?;
        Ok(Segment::new(Point::new(ax, ay), Point::new(bx, by)))
    }
}

impl Record for Polygon {
    fn mbr(&self) -> Rect {
        Polygon::mbr(self)
    }

    fn write_line(&self, out: &mut String) {
        let _ = write!(out, "P {}", self.len());
        for v in self.vertices() {
            let _ = write!(out, " {} {}", v.x, v.y);
        }
    }

    fn parse_line(line: &str) -> Result<Self, ParseError> {
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("P") => {}
            other => return Err(ParseError::new(format!("expected 'P' tag, got {other:?}"))),
        }
        let n = parse_f64(it.next(), "vertex count")? as usize;
        if n < 3 {
            return Err(ParseError::new(format!("polygon with {n} vertices")));
        }
        let mut vs = Vec::with_capacity(n);
        for i in 0..n {
            let x = parse_f64(it.next(), &format!("vertex {i} x"))?;
            let y = parse_f64(it.next(), &format!("vertex {i} y"))?;
            vs.push(Point::new(x, y));
        }
        Ok(Polygon::new(vs))
    }
}

/// A record wrapped with a numeric id — lets applications correlate
/// operation outputs (e.g. join pairs) back to their source rows.
///
/// Line format: `<id> <record line...>`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tagged<R> {
    /// Application-assigned identifier.
    pub id: u64,
    /// The wrapped spatial record.
    pub record: R,
}

impl<R> Tagged<R> {
    /// Wraps `record` with `id`.
    pub fn new(id: u64, record: R) -> Tagged<R> {
        Tagged { id, record }
    }
}

impl<R: Record> Record for Tagged<R> {
    fn mbr(&self) -> Rect {
        self.record.mbr()
    }

    fn write_line(&self, out: &mut String) {
        let _ = write!(out, "{} ", self.id);
        self.record.write_line(out);
    }

    fn parse_line(line: &str) -> Result<Self, ParseError> {
        let (id_tok, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| ParseError::new(format!("tagged record without id: {line:?}")))?;
        let id: u64 = id_tok
            .parse()
            .map_err(|_| ParseError::new(format!("bad record id {id_tok:?}")))?;
        Ok(Tagged {
            id,
            record: R::parse_line(rest)?,
        })
    }
}

/// Serializes a slice of records to newline-terminated text.
pub fn write_records<R: Record>(records: &[R]) -> String {
    let mut out = String::with_capacity(records.len() * 24);
    for r in records {
        r.write_line(&mut out);
        out.push('\n');
    }
    out
}

/// Parses every line of `text` as a record, failing on the first bad line.
pub fn parse_records<R: Record>(text: &str) -> Result<Vec<R>, ParseError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(R::parse_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip() {
        let p = Point::new(1.5, -2.25);
        assert_eq!(Point::parse_line(&p.to_line()).unwrap(), p);
    }

    #[test]
    fn rect_roundtrip() {
        let r = Rect::new(0.0, 1.0, 2.0, 3.5);
        assert_eq!(Rect::parse_line(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn segment_roundtrip() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 2.0));
        assert_eq!(Segment::parse_line(&s.to_line()).unwrap(), s);
    }

    #[test]
    fn polygon_roundtrip() {
        let poly = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 3.0),
        ]);
        assert_eq!(Polygon::parse_line(&poly.to_line()).unwrap(), poly);
    }

    #[test]
    fn bulk_roundtrip_skips_blank_lines() {
        let pts = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
        let mut text = write_records(&pts);
        text.push('\n');
        assert_eq!(parse_records::<Point>(&text).unwrap(), pts);
    }

    #[test]
    fn tagged_records_roundtrip_and_delegate_mbr() {
        let t = Tagged::new(42, Point::new(1.5, 2.5));
        let line = t.to_line();
        assert_eq!(line, "42 1.5 2.5");
        assert_eq!(Tagged::<Point>::parse_line(&line).unwrap(), t);
        assert_eq!(t.mbr(), Point::new(1.5, 2.5).to_rect());
        let tr = Tagged::new(7, Rect::new(0.0, 0.0, 2.0, 2.0));
        assert_eq!(Tagged::<Rect>::parse_line(&tr.to_line()).unwrap(), tr);
        assert!(Tagged::<Point>::parse_line("notanid 1 2").is_err());
        assert!(Tagged::<Point>::parse_line("42").is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Point::parse_line("1.0").is_err());
        assert!(Point::parse_line("1.0 nope").is_err());
        assert!(Point::parse_line("1.0 2.0 3.0").is_err());
        assert!(Rect::parse_line("1 2 3").is_err());
        assert!(Polygon::parse_line("P 2 0 0 1 1").is_err());
        assert!(Segment::parse_line("X 0 0 1 1").is_err());
        assert!(Point::parse_line("NaN 1").is_err());
        assert!(Point::parse_line("inf 1").is_err());
        assert!(Rect::parse_line("0 0 -inf 1").is_err());
    }

    #[test]
    fn columnar_hooks_roundtrip_points_and_rects() {
        let pts = vec![Point::new(1.0, 2.0), Point::new(-3.5, 4.25)];
        let mut cols = vec![Vec::new(); Point::ncols()];
        for p in &pts {
            p.push_cols(&mut cols);
        }
        let views: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(&Point::from_cols(&views, i), p);
        }

        let rs = vec![
            Rect::new(0.0, 1.0, 2.0, 3.0),
            Rect::new(-1.0, -2.0, 0.5, 0.75),
        ];
        let mut cols = vec![Vec::new(); Rect::ncols()];
        for r in &rs {
            r.push_cols(&mut cols);
        }
        let views: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        for (i, r) in rs.iter().enumerate() {
            assert_eq!(&Rect::from_cols(&views, i), r);
        }
        assert_eq!(Point::BINARY_KIND, Some(0));
        assert_eq!(Rect::BINARY_KIND, Some(1));
        assert_eq!(Segment::BINARY_KIND, None);
        assert_eq!(Polygon::BINARY_KIND, None);
    }
}
