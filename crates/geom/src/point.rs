//! Two-dimensional point.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::float::{approx_eq, total_cmp};
use crate::rect::Rect;

/// A point in the Euclidean plane.
///
/// `Point` is the fundamental record type of most SpatialHadoop operations
/// (skyline, convex hull, closest/farthest pair, Voronoi, kNN). It is
/// `Copy` and 16 bytes, so algorithms pass it by value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the `sqrt` when only
    /// comparisons are needed, e.g. in closest-pair and kNN inner loops).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Skyline (max-max) dominance: `self` dominates `other` iff it is at
    /// least as large in both coordinates and strictly larger in one.
    #[inline]
    pub fn dominates(&self, other: &Point) -> bool {
        self.x >= other.x && self.y >= other.y && (self.x > other.x || self.y > other.y)
    }

    /// The degenerate rectangle covering exactly this point.
    #[inline]
    pub fn to_rect(&self) -> Rect {
        Rect::new(self.x, self.y, self.x, self.y)
    }

    /// Coordinate-wise approximate equality (see [`crate::float::EPS`]).
    #[inline]
    pub fn approx_eq(&self, other: &Point) -> bool {
        approx_eq(self.x, other.x) && approx_eq(self.y, other.y)
    }

    /// Lexicographic (x, then y) total order used to canonicalize point
    /// sets before comparisons in tests and merges.
    #[inline]
    pub fn cmp_xy(&self, other: &Point) -> std::cmp::Ordering {
        total_cmp(self.x, other.x).then(total_cmp(self.y, other.y))
    }

    /// Cross product of vectors `(b - a)` and `(c - a)`.
    ///
    /// Positive when `a -> b -> c` turns counter-clockwise, negative when
    /// clockwise, and zero when collinear. This is the orientation
    /// predicate underlying the hull, sweep, and triangulation code.
    #[inline]
    pub fn cross(a: &Point, b: &Point, c: &Point) -> f64 {
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Sorts points lexicographically and removes approximate duplicates.
///
/// Duplicate sites break Delaunay triangulation and add no information to
/// any of the operations, so loaders dedup through this helper.
pub fn sort_dedup(points: &mut Vec<Point>) {
    points.sort_by(Point::cmp_xy);
    points.dedup_by(|a, b| a.approx_eq(b));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        let p = Point::new(2.0, 2.0);
        assert!(p.dominates(&Point::new(1.0, 1.0)));
        assert!(p.dominates(&Point::new(2.0, 1.0)));
        assert!(!p.dominates(&p));
        assert!(!p.dominates(&Point::new(3.0, 1.0)));
    }

    #[test]
    fn cross_orientation() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert!(Point::cross(&a, &b, &Point::new(1.0, 1.0)) > 0.0); // ccw
        assert!(Point::cross(&a, &b, &Point::new(1.0, -1.0)) < 0.0); // cw
        assert_eq!(Point::cross(&a, &b, &Point::new(2.0, 0.0)), 0.0); // collinear
    }

    #[test]
    fn sort_dedup_removes_near_duplicates() {
        let mut pts = vec![
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
            Point::new(1.0 + 1e-9, 1.0),
        ];
        sort_dedup(&mut pts);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], Point::new(0.0, 0.0));
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point::new(0.0, 0.0).midpoint(&Point::new(2.0, 4.0));
        assert_eq!(m, Point::new(1.0, 2.0));
    }
}
