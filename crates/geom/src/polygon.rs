//! Simple polygon: ring of vertices, area, containment, clipping.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::float::EPS;
use crate::point::Point;
use crate::rect::{mbr_of_points, Rect};
use crate::segment::Segment;

/// A simple polygon stored as a ring of vertices (first vertex is *not*
/// repeated at the end).
///
/// Polygons are the record type of the union operation and of the
/// rectangle/polygon spatial-join workloads. The constructor normalizes
/// the ring to counter-clockwise orientation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from a vertex ring; panics on fewer than 3
    /// vertices (no such records are ever generated or parsed).
    pub fn new(mut vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least 3 vertices");
        // Drop a duplicated closing vertex if the caller included one.
        if vertices.len() > 3 && vertices[0].approx_eq(vertices.last().unwrap()) {
            vertices.pop();
        }
        let mut poly = Polygon { vertices };
        if poly.signed_area() < 0.0 {
            poly.vertices.reverse();
        }
        poly
    }

    /// Axis-aligned rectangle as a polygon.
    pub fn from_rect(r: &Rect) -> Self {
        Polygon::new(r.corners().to_vec())
    }

    /// Vertex ring (counter-clockwise).
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false: constructors require ≥ 3 vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Signed area via the shoelace formula (positive = counter-clockwise).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let p = &self.vertices[i];
            let q = &self.vertices[(i + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        acc / 2.0
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Minimum bounding rectangle.
    pub fn mbr(&self) -> Rect {
        mbr_of_points(&self.vertices)
    }

    /// Iterator over the boundary edges.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Even-odd (ray casting) point-in-polygon test, strict interior.
    ///
    /// Points within [`EPS`] of the boundary report `false`; use
    /// [`Polygon::on_boundary`] to detect those.
    pub fn contains_point(&self, p: &Point) -> bool {
        if self.on_boundary(p) {
            return false;
        }
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let vi = &self.vertices[i];
            let vj = &self.vertices[j];
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// True if `p` lies within [`EPS`] of the polygon boundary.
    pub fn on_boundary(&self, p: &Point) -> bool {
        for e in self.edges() {
            let t = e.project_clamped(p);
            if e.at(t).distance(p) < EPS {
                return true;
            }
        }
        false
    }

    /// True if the two polygons overlap: boundaries intersect or one
    /// contains a vertex of the other.
    pub fn intersects(&self, other: &Polygon) -> bool {
        if !self.mbr().intersects(&other.mbr()) {
            return false;
        }
        for e1 in self.edges() {
            for e2 in other.edges() {
                if e1.intersection(&e2).is_some() {
                    return true;
                }
            }
        }
        self.contains_point(&other.vertices[0])
            || other.contains_point(&self.vertices[0])
            || self.on_boundary(&other.vertices[0])
            || other.on_boundary(&self.vertices[0])
    }

    /// Clips the polygon to a rectangle with Sutherland–Hodgman.
    ///
    /// Returns `None` when nothing (of positive area) remains. Only valid
    /// for convex clip regions, which a rectangle always is.
    pub fn clip_to_rect(&self, rect: &Rect) -> Option<Polygon> {
        #[derive(Clone, Copy)]
        enum Edge {
            Left(f64),
            Right(f64),
            Bottom(f64),
            Top(f64),
        }
        fn inside(e: Edge, p: &Point) -> bool {
            match e {
                Edge::Left(x) => p.x >= x,
                Edge::Right(x) => p.x <= x,
                Edge::Bottom(y) => p.y >= y,
                Edge::Top(y) => p.y <= y,
            }
        }
        fn cross_at(e: Edge, a: &Point, b: &Point) -> Point {
            match e {
                Edge::Left(x) | Edge::Right(x) => {
                    let t = (x - a.x) / (b.x - a.x);
                    Point::new(x, a.y + t * (b.y - a.y))
                }
                Edge::Bottom(y) | Edge::Top(y) => {
                    let t = (y - a.y) / (b.y - a.y);
                    Point::new(a.x + t * (b.x - a.x), y)
                }
            }
        }
        let mut ring = self.vertices.clone();
        for e in [
            Edge::Left(rect.x1),
            Edge::Right(rect.x2),
            Edge::Bottom(rect.y1),
            Edge::Top(rect.y2),
        ] {
            if ring.is_empty() {
                return None;
            }
            let mut out = Vec::with_capacity(ring.len() + 4);
            let n = ring.len();
            for i in 0..n {
                let cur = ring[i];
                let prev = ring[(i + n - 1) % n];
                let cur_in = inside(e, &cur);
                let prev_in = inside(e, &prev);
                if cur_in {
                    if !prev_in {
                        out.push(cross_at(e, &prev, &cur));
                    }
                    out.push(cur);
                } else if prev_in {
                    out.push(cross_at(e, &prev, &cur));
                }
            }
            ring = out;
        }
        // Remove consecutive duplicates introduced by clipping at corners.
        ring.dedup_by(|a, b| a.approx_eq(b));
        while ring.len() > 1 && ring[0].approx_eq(ring.last().unwrap()) {
            ring.pop();
        }
        if ring.len() < 3 {
            return None;
        }
        let poly = Polygon { vertices: ring };
        if poly.area() < EPS {
            None
        } else {
            Some(Polygon::new(poly.vertices))
        }
    }

    /// Convexity test (all turns the same way).
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        let mut sign = 0i8;
        for i in 0..n {
            let c = Point::cross(
                &self.vertices[i],
                &self.vertices[(i + 1) % n],
                &self.vertices[(i + 2) % n],
            );
            if c.abs() < EPS {
                continue;
            }
            let s = if c > 0.0 { 1 } else { -1 };
            if sign == 0 {
                sign = s;
            } else if sign != s {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "POLYGON(")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", v.x, v.y)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x: f64, y: f64, side: f64) -> Polygon {
        Polygon::from_rect(&Rect::new(x, y, x + side, y + side))
    }

    #[test]
    fn constructor_normalizes_to_ccw() {
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ]);
        assert!(cw.signed_area() > 0.0);
    }

    #[test]
    fn area_and_perimeter_of_square() {
        let s = square(0.0, 0.0, 2.0);
        assert!((s.area() - 4.0).abs() < 1e-12);
        assert!((s.perimeter() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn point_containment() {
        let s = square(0.0, 0.0, 2.0);
        assert!(s.contains_point(&Point::new(1.0, 1.0)));
        assert!(!s.contains_point(&Point::new(3.0, 1.0)));
        // boundary is not interior
        assert!(!s.contains_point(&Point::new(0.0, 1.0)));
        assert!(s.on_boundary(&Point::new(0.0, 1.0)));
    }

    #[test]
    fn concave_containment() {
        // L-shape
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(0.0, 3.0),
        ]);
        assert!(l.contains_point(&Point::new(0.5, 2.0)));
        assert!(!l.contains_point(&Point::new(2.0, 2.0)));
        assert!(!l.is_convex());
        assert!(square(0.0, 0.0, 1.0).is_convex());
    }

    #[test]
    fn overlap_detection() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        let c = square(5.0, 5.0, 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // containment without boundary crossing
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(4.0, 4.0, 1.0);
        assert!(outer.intersects(&inner));
    }

    #[test]
    fn clip_fully_inside_keeps_area() {
        let p = square(1.0, 1.0, 2.0);
        let clipped = p.clip_to_rect(&Rect::new(0.0, 0.0, 10.0, 10.0)).unwrap();
        assert!((clipped.area() - p.area()).abs() < 1e-9);
    }

    #[test]
    fn clip_partial_overlap() {
        let p = square(0.0, 0.0, 2.0);
        let clipped = p.clip_to_rect(&Rect::new(1.0, 1.0, 5.0, 5.0)).unwrap();
        assert!((clipped.area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clip_disjoint_is_none() {
        let p = square(0.0, 0.0, 1.0);
        assert!(p.clip_to_rect(&Rect::new(5.0, 5.0, 6.0, 6.0)).is_none());
    }

    #[test]
    fn clip_triangle_corner() {
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ]);
        // The [0,2]^2 square lies entirely under the hypotenuse x+y=4.
        let clipped = tri.clip_to_rect(&Rect::new(0.0, 0.0, 2.0, 2.0)).unwrap();
        assert!((clipped.area() - 4.0).abs() < 1e-9, "{}", clipped.area());
        // A [0,3]^2 window cuts the hypotenuse: 9 minus the corner
        // triangle with legs 2 gives area 7.
        let clipped = tri.clip_to_rect(&Rect::new(0.0, 0.0, 3.0, 3.0)).unwrap();
        assert!((clipped.area() - 7.0).abs() < 1e-9, "{}", clipped.area());
    }
}
