//! Axis-aligned rectangle (minimum bounding rectangle).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::point::Point;

/// An axis-aligned rectangle `[x1, x2] × [y1, y2]`.
///
/// Rectangles serve three roles throughout the system: as data records
/// (the spatial-join workloads), as minimum bounding rectangles of
/// polygons and index partitions, and as query ranges. Invariant:
/// `x1 <= x2 && y1 <= y2` (enforced by [`Rect::new`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum x.
    pub x1: f64,
    /// Minimum y.
    pub y1: f64,
    /// Maximum x.
    pub x2: f64,
    /// Maximum y.
    pub y2: f64,
}

impl Rect {
    /// Creates a rectangle, swapping coordinates if given out of order.
    #[inline]
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Rect {
            x1: x1.min(x2),
            y1: y1.min(y2),
            x2: x1.max(x2),
            y2: y1.max(y2),
        }
    }

    /// The "empty" rectangle: the identity element of [`Rect::expand`].
    #[inline]
    pub fn empty() -> Self {
        Rect {
            x1: f64::INFINITY,
            y1: f64::INFINITY,
            x2: f64::NEG_INFINITY,
            y2: f64::NEG_INFINITY,
        }
    }

    /// True if this is the [`Rect::empty`] rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x1 > self.x2 || self.y1 > self.y2
    }

    /// Width (`x` extent).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.x2 - self.x1).max(0.0)
    }

    /// Height (`y` extent).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.y2 - self.y1).max(0.0)
    }

    /// Area; zero for empty or degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half-perimeter ("margin" in R-tree literature).
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)
    }

    /// Containment of a point, inclusive of the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.x1 && p.x <= self.x2 && p.y >= self.y1 && p.y <= self.y2
    }

    /// Containment of a point using the half-open convention
    /// `[x1, x2) × [y1, y2)` that disjoint partitioners use so that a point
    /// on a shared boundary belongs to exactly one partition.
    #[inline]
    pub fn contains_point_half_open(&self, p: &Point) -> bool {
        p.x >= self.x1 && p.x < self.x2 && p.y >= self.y1 && p.y < self.y2
    }

    /// True if `other` lies entirely inside `self` (boundaries allowed).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && other.x1 >= self.x1
            && other.x2 <= self.x2
            && other.y1 >= self.y1
            && other.y2 <= self.y2
    }

    /// True if the two rectangles share at least one point (closed sense).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x1 <= other.x2
            && other.x1 <= self.x2
            && self.y1 <= other.y2
            && other.y1 <= self.y2
    }

    /// The intersection rectangle, or `None` when disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
            x2: self.x2.min(other.x2),
            y2: self.y2.min(other.y2),
        })
    }

    /// Smallest rectangle covering both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
            x2: self.x2.max(other.x2),
            y2: self.y2.max(other.y2),
        }
    }

    /// Grows `self` in place to cover `other`.
    #[inline]
    pub fn expand(&mut self, other: &Rect) {
        self.x1 = self.x1.min(other.x1);
        self.y1 = self.y1.min(other.y1);
        self.x2 = self.x2.max(other.x2);
        self.y2 = self.y2.max(other.y2);
    }

    /// Grows `self` in place to cover the point `p`.
    #[inline]
    pub fn expand_point(&mut self, p: &Point) {
        self.x1 = self.x1.min(p.x);
        self.y1 = self.y1.min(p.y);
        self.x2 = self.x2.max(p.x);
        self.y2 = self.y2.max(p.y);
    }

    /// Rectangle enlarged by `delta` on every side.
    #[inline]
    pub fn buffer(&self, delta: f64) -> Rect {
        Rect::new(
            self.x1 - delta,
            self.y1 - delta,
            self.x2 + delta,
            self.y2 + delta,
        )
    }

    /// Minimum distance from `p` to any point of the rectangle
    /// (zero when `p` is inside).
    #[inline]
    pub fn min_distance(&self, p: &Point) -> f64 {
        let dx = (self.x1 - p.x).max(0.0).max(p.x - self.x2);
        let dy = (self.y1 - p.y).max(0.0).max(p.y - self.y2);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum distance from `p` to any point of the rectangle.
    #[inline]
    pub fn max_distance(&self, p: &Point) -> f64 {
        let dx = (p.x - self.x1).abs().max((p.x - self.x2).abs());
        let dy = (p.y - self.y1).abs().max((p.y - self.y2).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum distance between any point of `self` and any point of
    /// `other` — the farthest-pair *upper bound* between two partitions.
    pub fn max_distance_rect(&self, other: &Rect) -> f64 {
        self.corners()
            .iter()
            .map(|c| other.max_distance(c))
            .fold(0.0, f64::max)
    }

    /// Farthest-pair *lower bound* between two partition MBRs.
    ///
    /// Because MBRs are minimal there is at least one record on each side,
    /// so a pair at distance `max(horizontal span, vertical span)` between
    /// the farthest parallel sides is guaranteed to exist.
    pub fn min_guaranteed_distance_rect(&self, other: &Rect) -> f64 {
        let d1 = (self.x1 - other.x2).abs().max((other.x1 - self.x2).abs());
        let d2 = (self.y1 - other.y2).abs().max((other.y1 - self.y2).abs());
        d1.max(d2)
    }

    /// The four corners in counter-clockwise order starting at `(x1, y1)`.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.x1, self.y1),
            Point::new(self.x2, self.y1),
            Point::new(self.x2, self.y2),
            Point::new(self.x1, self.y2),
        ]
    }

    /// Top-left corner — the highest *dominance power* point of a partition
    /// to its left (output-sensitive skyline).
    #[inline]
    pub fn top_left(&self) -> Point {
        Point::new(self.x1, self.y2)
    }

    /// Bottom-right corner — the highest dominance power point of a
    /// partition below (output-sensitive skyline).
    #[inline]
    pub fn bottom_right(&self) -> Point {
        Point::new(self.x2, self.y1)
    }

    /// Top-right corner (dominance target in the skyline filter step).
    #[inline]
    pub fn top_right(&self) -> Point {
        Point::new(self.x2, self.y2)
    }

    /// Bottom-left corner.
    #[inline]
    pub fn bottom_left(&self) -> Point {
        Point::new(self.x1, self.y1)
    }

    /// Skyline partition dominance: this MBR is guaranteed to contain a
    /// record dominating *all* records of `other`.
    ///
    /// Because MBR edges are minimal there is at least one record on each
    /// edge; it suffices that the bottom-left, bottom-right or top-left
    /// corner of `self` dominates the top-right corner of `other`.
    pub fn dominates_rect(&self, other: &Rect) -> bool {
        let target = other.top_right();
        self.bottom_left().dominates(&target)
            || self.bottom_right().dominates(&target)
            || self.top_left().dominates(&target)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}] x [{}, {}]", self.x1, self.x2, self.y1, self.y2)
    }
}

/// Computes the MBR of a point set (empty input yields [`Rect::empty`]).
pub fn mbr_of_points(points: &[Point]) -> Rect {
    let mut r = Rect::empty();
    for p in points {
        r.expand_point(p);
    }
    r
}

/// Computes the MBR of a rectangle set (empty input yields [`Rect::empty`]).
pub fn mbr_of_rects(rects: &[Rect]) -> Rect {
    let mut r = Rect::empty();
    for x in rects {
        r.expand(x);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corner_order() {
        let r = Rect::new(2.0, 3.0, 0.0, 1.0);
        assert_eq!(r, Rect::new(0.0, 1.0, 2.0, 3.0));
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 2.0);
    }

    #[test]
    fn empty_behaves_as_identity() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(e.union(&r), r);
        assert!(!e.intersects(&r));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), Some(Rect::new(1.0, 1.0, 2.0, 2.0)));
        assert_eq!(a.union(&b), Rect::new(0.0, 0.0, 3.0, 3.0));
        let c = Rect::new(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn touching_rects_intersect_in_closed_sense() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).unwrap().area(), 0.0);
    }

    #[test]
    fn half_open_containment_partitions_space() {
        let left = Rect::new(0.0, 0.0, 1.0, 2.0);
        let right = Rect::new(1.0, 0.0, 2.0, 2.0);
        let boundary = Point::new(1.0, 0.5);
        assert!(!left.contains_point_half_open(&boundary));
        assert!(right.contains_point_half_open(&boundary));
    }

    #[test]
    fn min_max_distance_to_point() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.min_distance(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(r.min_distance(&Point::new(5.0, 1.0)), 3.0);
        assert_eq!(r.max_distance(&Point::new(0.0, 0.0)), 8.0_f64.sqrt());
    }

    #[test]
    fn farthest_pair_bounds_are_ordered() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(5.0, 0.0, 6.0, 1.0);
        let lower = a.min_guaranteed_distance_rect(&b);
        let upper = a.max_distance_rect(&b);
        assert!(lower <= upper);
        assert_eq!(lower, 6.0); // farthest vertical sides at x=0 and x=6
        assert_eq!(upper, (36.0f64 + 1.0).sqrt());
    }

    #[test]
    fn skyline_rect_dominance() {
        // c5 sits entirely above-right of c1.
        let c1 = Rect::new(0.0, 0.0, 1.0, 1.0);
        let c5 = Rect::new(2.0, 2.0, 3.0, 3.0);
        assert!(c5.dominates_rect(&c1));
        assert!(!c1.dominates_rect(&c5));
        // Overlapping rectangles dominate neither way.
        let c2 = Rect::new(0.5, 0.5, 2.5, 2.5);
        assert!(!c2.dominates_rect(&c5));
    }

    #[test]
    fn mbr_of_points_covers_all() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 2.0),
        ];
        let r = mbr_of_points(&pts);
        assert_eq!(r, Rect::new(-2.0, 0.0, 3.0, 5.0));
        for p in &pts {
            assert!(r.contains_point(p));
        }
    }

    #[test]
    fn reference_point_assigns_exactly_one_owner() {
        // A 2x2 grid of partitions over [0,2]x[0,2]; interior boundary point
        // must belong to exactly one cell.
        let cells = [
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(1.0, 0.0, 2.0, 1.0),
            Rect::new(0.0, 1.0, 1.0, 2.0),
            Rect::new(1.0, 1.0, 2.0, 2.0),
        ];
        let p = Point::new(1.0, 1.0);
        let owners = cells
            .iter()
            .filter(|c| c.contains_point_half_open(&p))
            .count();
        assert_eq!(owners, 1);
    }
}
