//! Line segment with intersection and clipping predicates.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::float::EPS;
use crate::point::Point;
use crate::rect::Rect;

/// A straight line segment between two endpoints.
///
/// Segments are the output unit of the (enhanced) polygon-union operation:
/// the union boundary is emitted as a bag of segments so that no single
/// machine ever has to stitch the full result polygon together.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between `a` and `b`.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Midpoint.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(&self.b)
    }

    /// Minimum bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> Rect {
        Rect::new(self.a.x, self.a.y, self.b.x, self.b.y)
    }

    /// Unit normal vector `(nx, ny)`; `(0, 0)` for degenerate segments.
    pub fn unit_normal(&self) -> (f64, f64) {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        let len = (dx * dx + dy * dy).sqrt();
        if len < EPS {
            (0.0, 0.0)
        } else {
            (-dy / len, dx / len)
        }
    }

    /// A canonical form with endpoints in lexicographic order, so that the
    /// same geometric segment produced by two polygons compares equal.
    pub fn canonical(&self) -> Segment {
        if self.a.cmp_xy(&self.b) == std::cmp::Ordering::Greater {
            Segment::new(self.b, self.a)
        } else {
            *self
        }
    }

    /// Proper or touching intersection point with `other`, if any.
    ///
    /// Returns the intersection parameterized on `self`; collinear
    /// overlapping segments return `None` (the union algorithm handles
    /// collinear overlap through its canonical-duplicate rule instead).
    pub fn intersection(&self, other: &Segment) -> Option<Point> {
        let d1x = self.b.x - self.a.x;
        let d1y = self.b.y - self.a.y;
        let d2x = other.b.x - other.a.x;
        let d2y = other.b.y - other.a.y;
        let denom = d1x * d2y - d1y * d2x;
        if denom.abs() < EPS * EPS {
            return None; // parallel or collinear
        }
        let sx = other.a.x - self.a.x;
        let sy = other.a.y - self.a.y;
        let t = (sx * d2y - sy * d2x) / denom;
        let u = (sx * d1y - sy * d1x) / denom;
        if (-1e-12..=1.0 + 1e-12).contains(&t) && (-1e-12..=1.0 + 1e-12).contains(&u) {
            Some(Point::new(self.a.x + t * d1x, self.a.y + t * d1y))
        } else {
            None
        }
    }

    /// Parameter `t in [0, 1]` of the projection of `p` onto the segment's
    /// supporting line, clamped to the segment.
    pub fn project_clamped(&self, p: &Point) -> f64 {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        let len_sq = dx * dx + dy * dy;
        if len_sq < EPS * EPS {
            return 0.0;
        }
        (((p.x - self.a.x) * dx + (p.y - self.a.y) * dy) / len_sq).clamp(0.0, 1.0)
    }

    /// Point at parameter `t` along the segment.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        Point::new(
            self.a.x + t * (self.b.x - self.a.x),
            self.a.y + t * (self.b.y - self.a.y),
        )
    }

    /// Clips the segment to `rect` using the Liang–Barsky algorithm.
    ///
    /// Returns `None` when the segment lies entirely outside. This is the
    /// *pruning* primitive of the enhanced union operation: each machine
    /// keeps only the parts of the union boundary inside its own partition.
    pub fn clip(&self, rect: &Rect) -> Option<Segment> {
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        let mut t0 = 0.0f64;
        let mut t1 = 1.0f64;
        let checks = [
            (-dx, self.a.x - rect.x1),
            (dx, rect.x2 - self.a.x),
            (-dy, self.a.y - rect.y1),
            (dy, rect.y2 - self.a.y),
        ];
        for (p, q) in checks {
            if p.abs() < EPS * EPS {
                if q < 0.0 {
                    return None; // parallel and outside
                }
            } else {
                let r = q / p;
                if p < 0.0 {
                    if r > t1 {
                        return None;
                    }
                    if r > t0 {
                        t0 = r;
                    }
                } else {
                    if r < t0 {
                        return None;
                    }
                    if r < t1 {
                        t1 = r;
                    }
                }
            }
        }
        if t0 > t1 {
            return None;
        }
        let clipped = Segment::new(self.at(t0), self.at(t1));
        if clipped.length() < EPS {
            None
        } else {
            Some(clipped)
        }
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        let p = s1.intersection(&s2).unwrap();
        assert!(p.approx_eq(&Point::new(1.0, 1.0)));
    }

    #[test]
    fn touching_at_endpoint_intersects() {
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(1.0, 1.0, 2.0, 0.0);
        let p = s1.intersection(&s2).unwrap();
        assert!(p.approx_eq(&Point::new(1.0, 1.0)));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert_eq!(s1.intersection(&s2), None);
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(2.0, -1.0, 2.0, 1.0);
        assert_eq!(s1.intersection(&s2), None);
    }

    #[test]
    fn clip_inside_is_identity() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        let s = seg(1.0, 1.0, 2.0, 3.0);
        assert_eq!(s.clip(&r), Some(s));
    }

    #[test]
    fn clip_crossing_cuts_at_boundary() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        let s = seg(-5.0, 5.0, 15.0, 5.0);
        let c = s.clip(&r).unwrap();
        assert!(c.a.approx_eq(&Point::new(0.0, 5.0)));
        assert!(c.b.approx_eq(&Point::new(10.0, 5.0)));
    }

    #[test]
    fn clip_outside_is_none() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(seg(2.0, 2.0, 3.0, 3.0).clip(&r), None);
        // Degenerate sliver along the boundary is dropped too.
        assert_eq!(seg(1.0, 1.0, 2.0, 1.0).clip(&r), None);
    }

    #[test]
    fn canonical_is_order_independent() {
        let s1 = seg(1.0, 1.0, 0.0, 0.0);
        let s2 = seg(0.0, 0.0, 1.0, 1.0);
        assert_eq!(s1.canonical(), s2.canonical());
    }

    #[test]
    fn unit_normal_is_perpendicular_unit() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        let (nx, ny) = s.unit_normal();
        assert!((nx.hypot(ny) - 1.0).abs() < 1e-12);
        assert_eq!((nx, ny), (0.0, 1.0));
    }
}
