//! Wire protocol: a line-oriented request/response framing shared by
//! the server and the bench client.
//!
//! ```text
//! S: SHADOOP 1 READY\n                      (banner, once per connection)
//! C: <one line of Pigeon source>\n          (a request; ';'-separated stmts)
//! S: DATA <nbytes>\n<nbytes of payload>     (zero or more bounded frames)
//! S: OK <rows>\n                            (success terminator)
//!    | ERR <nbytes>\n<nbytes of message>    (failure terminator)
//!    | 429 BUSY <retry_ms>\n                (admission rejection; retry)
//! C: QUIT\n                                 (optional; server answers BYE)
//! ```
//!
//! Frame payloads are result lines, each newline-terminated. Frames are
//! flushed as soon as they reach the configured chunk size *or* a
//! statement completes, so long result sets stream instead of
//! buffering; a single line longer than the chunk size travels alone in
//! one oversized frame. Everything is printable text — the protocol is
//! debuggable with netcat.

use std::io::{self, BufRead, Read, Write};

/// Protocol revision, bumped on incompatible framing changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// Greeting line sent once per connection.
pub const BANNER: &str = "SHADOOP 1 READY";

/// Reply sent in response to `QUIT` before the server closes.
pub const BYE: &str = "BYE";

/// Default frame payload bound, in bytes.
pub const DEFAULT_CHUNK_BYTES: usize = 8192;

/// A parsed response header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Header {
    /// `DATA <nbytes>`: a payload frame follows.
    Data(usize),
    /// `OK <rows>`: request finished; total result rows streamed.
    Ok(u64),
    /// `ERR <nbytes>`: request failed; message payload follows.
    Err(usize),
    /// `429 BUSY <retry_ms>`: admission control rejected the request.
    Busy(u64),
    /// `BYE`: the server acknowledged `QUIT` and is closing.
    Bye,
}

/// Parses one response header line.
pub fn parse_header(line: &str) -> Result<Header, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    let mut parts = line.split_whitespace();
    let word = parts.next().unwrap_or("");
    let arg = |p: &mut std::str::SplitWhitespace<'_>| {
        p.next()
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("malformed header: {line:?}"))
    };
    match word {
        "DATA" => Ok(Header::Data(arg(&mut parts)? as usize)),
        "OK" => Ok(Header::Ok(arg(&mut parts)?)),
        "ERR" => Ok(Header::Err(arg(&mut parts)? as usize)),
        "429" => {
            if parts.next() != Some("BUSY") {
                return Err(format!("malformed header: {line:?}"));
            }
            Ok(Header::Busy(arg(&mut parts)?))
        }
        "BYE" => Ok(Header::Bye),
        _ => Err(format!("unrecognized header: {line:?}")),
    }
}

/// Streams result lines as bounded `DATA` frames; returns the number of
/// frames written. Each frame is flushed immediately so the client sees
/// rows while later statements are still running.
pub fn write_data_frames(
    w: &mut impl Write,
    lines: &[String],
    chunk_bytes: usize,
) -> io::Result<usize> {
    let chunk = chunk_bytes.max(1);
    let mut frames = 0usize;
    let mut buf = String::new();
    for line in lines {
        if !buf.is_empty() && buf.len() + line.len() + 1 > chunk {
            write_frame(w, "DATA", &buf)?;
            frames += 1;
            buf.clear();
        }
        buf.push_str(line);
        buf.push('\n');
    }
    if !buf.is_empty() {
        write_frame(w, "DATA", &buf)?;
        frames += 1;
    }
    Ok(frames)
}

/// Writes the success terminator.
pub fn write_ok(w: &mut impl Write, rows: u64) -> io::Result<()> {
    w.write_all(format!("OK {rows}\n").as_bytes())?;
    w.flush()
}

/// Writes the failure terminator with its message payload.
pub fn write_err(w: &mut impl Write, message: &str) -> io::Result<()> {
    write_frame(w, "ERR", message)
}

/// Writes the admission-rejection terminator.
pub fn write_busy(w: &mut impl Write, retry_ms: u64) -> io::Result<()> {
    w.write_all(format!("429 BUSY {retry_ms}\n").as_bytes())?;
    w.flush()
}

fn write_frame(w: &mut impl Write, kind: &str, payload: &str) -> io::Result<()> {
    w.write_all(format!("{kind} {}\n", payload.len()).as_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads exactly `n` payload bytes following a `DATA`/`ERR` header.
pub fn read_payload(r: &mut impl BufRead, n: usize) -> io::Result<String> {
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("payload not UTF-8: {e}"),
        )
    })
}

/// Reads one header line (without trailing newline). `Ok(None)` on a
/// cleanly closed stream.
pub fn read_header_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    if r.by_ref().take(256).read_line(&mut line)? == 0 {
        return Ok(None);
    }
    Ok(Some(line.trim_end_matches(['\r', '\n']).to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_round_trip() {
        assert_eq!(parse_header("DATA 42"), Ok(Header::Data(42)));
        assert_eq!(parse_header("OK 7\n"), Ok(Header::Ok(7)));
        assert_eq!(parse_header("ERR 13"), Ok(Header::Err(13)));
        assert_eq!(parse_header("429 BUSY 100"), Ok(Header::Busy(100)));
        assert_eq!(parse_header("BYE"), Ok(Header::Bye));
        assert!(parse_header("NOPE 1").is_err());
        assert!(parse_header("DATA lots").is_err());
        assert!(parse_header("429 FULL 5").is_err());
    }

    #[test]
    fn frames_are_bounded_and_cover_all_lines() {
        let lines: Vec<String> = (0..100).map(|i| format!("row-{i:04}")).collect();
        let mut out = Vec::new();
        let frames = write_data_frames(&mut out, &lines, 64).unwrap();
        assert!(frames > 1, "small chunk must split the stream");
        // Re-parse every frame and reassemble.
        let mut r = io::BufReader::new(&out[..]);
        let mut got = Vec::new();
        while let Some(h) = read_header_line(&mut r).unwrap() {
            match parse_header(&h).unwrap() {
                Header::Data(n) => {
                    assert!(n <= 64, "frame payload over the chunk bound: {n}");
                    let payload = read_payload(&mut r, n).unwrap();
                    got.extend(payload.lines().map(str::to_string));
                }
                other => panic!("unexpected header {other:?}"),
            }
        }
        assert_eq!(got, lines);
    }

    #[test]
    fn oversized_single_line_travels_alone() {
        let lines = vec!["x".repeat(100)];
        let mut out = Vec::new();
        let frames = write_data_frames(&mut out, &lines, 16).unwrap();
        assert_eq!(frames, 1);
        let mut r = io::BufReader::new(&out[..]);
        let h = read_header_line(&mut r).unwrap().unwrap();
        assert_eq!(parse_header(&h), Ok(Header::Data(101)));
    }

    #[test]
    fn empty_result_writes_no_frames() {
        let mut out = Vec::new();
        assert_eq!(write_data_frames(&mut out, &[], 64).unwrap(), 0);
        assert!(out.is_empty());
    }
}
