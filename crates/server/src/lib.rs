//! # sh-server — the network service layer
//!
//! SpatialHadoop's pipeline was only reachable through the CLI driver;
//! this crate is the front door. It serves Pigeon over a line-oriented
//! TCP protocol, one OS thread per connection, with the existing
//! [`sh_mapreduce::JobScheduler`] providing admission control — no
//! async runtime required or wanted:
//!
//! * **Sessions.** Every connection forks the server's base
//!   [`sh_pigeon::SessionCtx`] (whatever the init script bound) and owns
//!   the fork: `SET` and variable bindings are session-local, so two
//!   clients can hold conflicting `SET result_limit`s and get
//!   independent answers.
//! * **Streaming.** Results leave in bounded `DATA <nbytes>` frames as
//!   each statement completes instead of buffering a whole result set;
//!   a terminator line (`OK <rows>` / `ERR <nbytes>` / `429 BUSY
//!   <retry_ms>`) closes every request.
//! * **Back-pressure.** Statements that run cluster jobs are admitted
//!   through the shared scheduler under the connection's tenant;
//!   `QueueFull` maps to a structured `429 BUSY` the client retries.
//! * **Disconnect safety.** While a statement is queued or running the
//!   connection thread watches the socket; a client that goes away has
//!   its still-queued statement cancelled so it cannot wedge a slot.
//!
//! The protocol is netcat-friendly by construction — see [`protocol`]
//! for the exact framing and `README.md` for a quickstart.

pub mod protocol;
pub mod server;

pub use protocol::{Header, BANNER, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig};
