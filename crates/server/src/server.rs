//! The server proper: listener, per-connection sessions, admission.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use sh_dfs::Dfs;
use sh_mapreduce::{JobScheduler, SchedConfig};
use sh_pigeon::{parser, Admission, Pigeon, PigeonError, SessionCtx};

use crate::protocol::{
    write_busy, write_data_frames, write_err, write_ok, BANNER, BYE, DEFAULT_CHUNK_BYTES,
};

/// How a [`Server`] is stood up.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Admission config for the shared scheduler: `max_in_flight` jobs
    /// run concurrently, `queue_cap` wait, the rest get `429 BUSY`.
    pub sched: SchedConfig,
    /// Bound on a `DATA` frame's payload.
    pub chunk_bytes: usize,
    /// Back-off hint carried in `429 BUSY` responses.
    pub retry_ms: u64,
    /// Pigeon source executed once at startup; the bindings it creates
    /// become the base session every connection forks (e.g. a shared
    /// indexed dataset).
    pub init_script: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            sched: SchedConfig::default(),
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            retry_ms: 100,
            init_script: None,
        }
    }
}

/// A running query server. Dropping it (or calling [`Server::stop`])
/// shuts the listener down, hangs up every connection, and joins all
/// service threads.
pub struct Server {
    inner: Arc<Inner>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

struct Inner {
    dfs: Dfs,
    sched: JobScheduler,
    cfg: ServerConfig,
    addr: SocketAddr,
    /// Session every connection forks: the init script's bindings.
    /// (Mutex only for `Sync`: forks are read-only and momentary.)
    base: Mutex<SessionCtx>,
    stop: AtomicBool,
    conn_seq: AtomicU64,
    /// Live connection streams, for hang-up on shutdown.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Connection service threads, joined on shutdown.
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Server {
    /// Binds, runs the init script, and starts accepting connections.
    pub fn start(dfs: &Dfs, cfg: ServerConfig) -> io::Result<Server> {
        let sched = JobScheduler::new(dfs, cfg.sched);
        let mut base = SessionCtx::new();
        if let Some(src) = &cfg.init_script {
            let mut engine = Pigeon::with_scheduler(dfs, &sched);
            let script = parser::parse(src)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            engine
                .execute_with(&mut base, &script)
                .map_err(|e| io::Error::other(format!("init script failed: {e}")))?;
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            dfs: dfs.clone(),
            sched,
            cfg,
            addr,
            base: Mutex::new(base),
            stop: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
        });
        sh_trace::events::emit("server.start", vec![("addr", addr.to_string())]);
        let accept_inner = Arc::clone(&inner);
        let accept_thread = thread::Builder::new()
            .name("sh-server-accept".into())
            .spawn(move || accept_loop(accept_inner, listener))?;
        Ok(Server {
            inner,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The scheduler every connection shares — exposed so tests can
    /// observe queue depth and in-flight counts.
    pub fn scheduler(&self) -> &JobScheduler {
        &self.inner.sched
    }

    /// Stops accepting, hangs up every live connection, and joins all
    /// service threads. Idempotent.
    pub fn stop(&mut self) {
        if self.inner.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.inner.addr, Duration::from_millis(200));
        for (_, stream) in self.inner.conns.lock().expect("server poisoned").drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let threads = std::mem::take(&mut *self.inner.threads.lock().expect("server poisoned"));
        for h in threads {
            let _ = h.join();
        }
        sh_trace::events::emit("server.stop", vec![("addr", self.inner.addr.to_string())]);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    for stream in listener.incoming() {
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let id = inner.conn_seq.fetch_add(1, Ordering::Relaxed);
        let registry = sh_trace::global();
        registry.counter_add("server.conn.accepted", 1);
        {
            let mut conns = inner.conns.lock().expect("server poisoned");
            if let Ok(clone) = stream.try_clone() {
                conns.insert(id, clone);
            }
            registry.gauge_set("server.conn.active", conns.len() as i64);
        }
        let conn_inner = Arc::clone(&inner);
        let handle = thread::Builder::new()
            .name(format!("sh-server-conn-{id}"))
            .spawn(move || {
                serve_conn(&conn_inner, stream, id);
                let mut conns = conn_inner.conns.lock().expect("server poisoned");
                conns.remove(&id);
                let registry = sh_trace::global();
                registry.gauge_set("server.conn.active", conns.len() as i64);
                registry.counter_add("server.conn.closed", 1);
            });
        if let Ok(handle) = handle {
            inner.threads.lock().expect("server poisoned").push(handle);
        }
    }
}

fn serve_conn(inner: &Inner, stream: TcpStream, id: u64) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    sh_trace::events::emit(
        "server.conn.open",
        vec![("conn", id.to_string()), ("peer", peer)],
    );
    let _ = stream.set_nodelay(true);
    let mut queries = 0u64;
    // Reader and writer are clones of one socket; `stream` itself stays
    // free for liveness peeks while a statement is in flight.
    let served = (|| -> io::Result<()> {
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream.try_clone()?;
        writer.write_all(format!("{BANNER}\n").as_bytes())?;
        writer.flush()?;
        let mut engine = Pigeon::with_scheduler(&inner.dfs, &inner.sched);
        let mut sess = inner.base.lock().expect("server poisoned").fork();
        let tenant = format!("conn-{id}");
        for line in reader.lines() {
            let line = line?;
            if inner.stop.load(Ordering::SeqCst) {
                break;
            }
            let request = line.trim();
            if request.is_empty() || request.starts_with('#') {
                continue;
            }
            if request.eq_ignore_ascii_case("quit") || request.eq_ignore_ascii_case("exit") {
                writer.write_all(format!("{BYE}\n").as_bytes())?;
                writer.flush()?;
                break;
            }
            queries += 1;
            if !handle_request(
                inner,
                &mut engine,
                &mut sess,
                &tenant,
                request,
                &stream,
                &mut writer,
            )? {
                break;
            }
        }
        Ok(())
    })();
    if served.is_err() {
        // Broken pipe / reset mid-request: the client is gone, which is
        // a normal way for a connection to end.
        sh_trace::global().counter_add("server.conn.io_error", 1);
    }
    sh_trace::events::emit(
        "server.conn.close",
        vec![("conn", id.to_string()), ("queries", queries.to_string())],
    );
}

/// Executes one request line. Returns `Ok(false)` when the connection
/// should close (client vanished mid-statement).
fn handle_request(
    inner: &Inner,
    engine: &mut Pigeon,
    sess: &mut SessionCtx,
    tenant: &str,
    request: &str,
    stream: &TcpStream,
    writer: &mut TcpStream,
) -> io::Result<bool> {
    let registry = sh_trace::global();
    let started = Instant::now();
    let chunk = inner.cfg.chunk_bytes;
    let script = match parser::parse(request) {
        Ok(s) => s,
        Err(e) => {
            registry.counter_add("server.query.err", 1);
            write_err(writer, &e.to_string())?;
            return Ok(true);
        }
    };
    let mut rows = 0u64;
    let mut stream_out = |writer: &mut TcpStream, lines: Vec<String>| -> io::Result<()> {
        rows += lines.len() as u64;
        let frames = write_data_frames(writer, &lines, chunk)?;
        registry.counter_add("server.frames.sent", frames as u64);
        registry.counter_add("server.rows.streamed", lines.len() as u64);
        Ok(())
    };
    for stmt in &script.stmts {
        match engine.admit_stmt(sess, stmt, tenant) {
            Ok(Admission::Done(lines)) => stream_out(writer, lines)?,
            Ok(Admission::Busy) => {
                registry.counter_add("server.query.busy", 1);
                sh_trace::events::emit("server.query.busy", vec![("tenant", tenant.to_string())]);
                write_busy(writer, inner.cfg.retry_ms)?;
                return Ok(true);
            }
            Ok(Admission::Pending(ticket)) => {
                // Poll rather than block: the wait doubles as a liveness
                // watch on the socket so an abandoned statement can be
                // cancelled out of the queue.
                let outcome = loop {
                    if let Some(r) = ticket.poll() {
                        break r;
                    }
                    if inner.stop.load(Ordering::SeqCst) || client_gone(stream) {
                        let dequeued = ticket.cancel();
                        registry.counter_add("server.query.cancelled", 1);
                        sh_trace::events::emit(
                            "server.query.cancelled",
                            vec![
                                ("tenant", tenant.to_string()),
                                ("job", ticket.id().to_string()),
                                ("dequeued", dequeued.to_string()),
                            ],
                        );
                        return Ok(false);
                    }
                    thread::sleep(Duration::from_millis(1));
                };
                match outcome {
                    Ok(out) => {
                        let lines = sess.absorb(out);
                        stream_out(writer, lines)?;
                    }
                    Err(e) => {
                        registry.counter_add("server.query.err", 1);
                        write_err(writer, &e.to_string())?;
                        return Ok(true);
                    }
                }
            }
            Err(e) => {
                // Every Pigeon error leaves the session usable, so the
                // connection survives its failed statement.
                registry.counter_add("server.query.err", 1);
                sh_trace::events::emit(
                    "server.query.err",
                    vec![
                        ("tenant", tenant.to_string()),
                        ("kind", e_kind(&e).to_string()),
                    ],
                );
                write_err(writer, &e.to_string())?;
                return Ok(true);
            }
        }
    }
    registry.counter_add("server.query.ok", 1);
    registry.observe(
        "server.query.micros",
        started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
    );
    write_ok(writer, rows)?;
    Ok(true)
}

fn e_kind(e: &PigeonError) -> &'static str {
    match e {
        PigeonError::Parse { .. } => "parse",
        PigeonError::Undefined(_) => "undefined",
        PigeonError::Type(_) => "type",
        PigeonError::Op(_) => "op",
        PigeonError::Job(_) => "job",
    }
}

/// Whether the peer hung up: a zero-byte peek means FIN arrived, a
/// `WouldBlock` means the socket is idle but alive, pending bytes mean
/// a pipelined request is waiting.
fn client_gone(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let gone = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}
