//! Offline stand-in for the `memmap2` crate.
//!
//! Implements the subset this workspace uses: [`Mmap`], a read-only,
//! shared memory mapping of a whole file. On unix targets the mapping is a
//! real `mmap(2)` call (page-aligned base, pages stay valid after the file
//! is unlinked, which the DFS spill store relies on). Elsewhere — and for
//! empty files, which POSIX mmap rejects — the "mapping" degrades to an
//! owned in-memory copy with the same API; downstream alignment checks
//! treat both uniformly.

use std::fs::File;
use std::io;
use std::ops::Deref;

enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Owned(Box<[u8]>),
}

/// Read-only memory mapping of a file.
pub struct Mmap {
    backing: Backing,
}

// The mapping is read-only for its whole lifetime: shared references from
// any thread are fine, and unmap happens exactly once in Drop.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// # Safety
    ///
    /// The caller must ensure the underlying file is not truncated or
    /// mutated through other handles while the mapping is alive (the DFS
    /// spill store guarantees this by making spill files immutable per
    /// generation).
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        {
            if len > 0 {
                use std::os::unix::io::AsRawFd;
                let ptr = sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                );
                if ptr as isize == -1 {
                    return Err(io::Error::last_os_error());
                }
                return Ok(Mmap {
                    backing: Backing::Mapped {
                        ptr: ptr as *const u8,
                        len,
                    },
                });
            }
        }
        Mmap::map_owned(file, len)
    }

    fn map_owned(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut f = file.try_clone()?;
        {
            use std::io::Seek;
            f.seek(io::SeekFrom::Start(0))?;
        }
        f.read_to_end(&mut buf)?;
        Ok(Mmap {
            backing: Backing::Owned(buf.into_boxed_slice()),
        })
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(buf) => buf,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            unsafe {
                sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(contents: &[u8]) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "memmap2-test-{}-{:p}",
            std::process::id(),
            &contents
        ));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        f.sync_all().unwrap();
        let reader = File::open(&path).unwrap();
        (path, reader)
    }

    #[test]
    fn maps_file_contents() {
        let (path, f) = temp_file(b"hello mapping");
        let map = unsafe { Mmap::map(&f).unwrap() };
        assert_eq!(&map[..], b"hello mapping");
        drop(map);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let (path, f) = temp_file(b"");
        let map = unsafe { Mmap::map(&f).unwrap() };
        assert!(map.is_empty());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mapping_survives_unlink() {
        let (path, f) = temp_file(b"persist after unlink");
        let map = unsafe { Mmap::map(&f).unwrap() };
        std::fs::remove_file(&path).unwrap();
        assert_eq!(&map[..], b"persist after unlink");
    }

    #[test]
    fn base_is_eight_byte_aligned_for_nonempty_files() {
        let (path, f) = temp_file(&[0u8; 64]);
        let map = unsafe { Mmap::map(&f).unwrap() };
        assert_eq!(map.as_ptr() as usize % 8, 0);
        std::fs::remove_file(path).unwrap();
    }
}
