//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `SliceRandom::{shuffle, choose}`
//! — on a xoshiro256** generator seeded through SplitMix64. Stream values
//! differ from upstream `rand` (tests here assert structural properties,
//! not exact streams), but every seeded use is fully deterministic, which
//! is the property the simulated cluster depends on.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng {
    use super::SeedableRng;

    /// xoshiro256** — small, fast, and plenty for simulation workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the 64-bit seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers (`shuffle`, `choose`).
pub trait SliceRandom {
    type Item;
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleUniform, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: usize = rng.gen_range(0..=5);
            assert!(m <= 5);
            let u: f64 = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
