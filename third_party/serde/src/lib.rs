//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no serializer
//! crate is present; JSON output is hand-rolled where needed), so the
//! traits are markers and the derives expand to empty impls. The `derive`
//! feature exists so `features = ["derive"]` in dependents resolves.

/// Marker for types that declared themselves serializable.
pub trait Serialize {}

/// Marker for types that declared themselves deserializable.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
