//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range/tuple/vec/select/string
//! strategies, and the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name) so failures reproduce; there
//! is no shrinking — a failing case reports its assertion message only.

pub mod test_runner {
    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError::Fail(msg)
        }
    }

    /// Per-test deterministic generator (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test name so each test gets a stable stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration; only the case count is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Interprets a regex-ish pattern very loosely: only the trailing
    /// `{lo,hi}` repetition (if any) is honoured as a length range, and
    /// characters are drawn from a printable-heavy pool with some
    /// whitespace and non-ASCII mixed in. Sufficient for fuzzing parsers
    /// that must merely not panic on arbitrary text.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repeat(self).unwrap_or((0, 16));
            let len = lo + rng.below(hi - lo + 1);
            const POOL: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', ',', '.', ';', ':', '-', '+', '(',
                ')', '[', ']', '{', '}', '"', '\'', '\\', '/', '*', '#', '%', '_', '=', '<', '>',
                '|', '!', '?', '~', 'é', 'λ', '→', '\u{7f}',
            ];
            (0..len).map(|_| POOL[rng.below(POOL.len())]).collect()
        }
    }

    fn parse_repeat(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern.rfind('}')?;
        let body = pattern.get(open + 1..close)?;
        let (lo, hi) = body.split_once(',')?;
        let lo: usize = lo.trim().parse().ok()?;
        let hi: usize = hi.trim().parse().ok()?;
        (lo <= hi).then_some((lo, hi))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` of values from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly picks one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of empty set");
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// Namespace mirror of upstream's `proptest::prop` re-exports.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut passed = 0u32;
            let mut attempts = 0u32;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(100),
                    "prop_assume! rejected too many cases in {}",
                    stringify!($name),
                );
                let __values = ( $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+ );
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    let ( $($arg,)+ ) = __values;
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{} (case {} of {})", msg, passed + 1, config.cases)
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Fails the current case with a message when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples((x, n) in (0.0..100.0f64, 1usize..10)) {
            prop_assert!((0.0..100.0).contains(&x));
            prop_assert!((1..10).contains(&n), "n out of range: {}", n);
        }

        #[test]
        fn vec_and_select_and_assume(
            v in prop::collection::vec(0u32..5, 1..8),
            pick in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert_eq!(pick.len(), 1);
        }

        #[test]
        fn string_pattern(s in ".{0,120}") {
            prop_assert!(s.chars().count() <= 120);
        }

        #[test]
        fn prop_map_works(y in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert!(y % 2 == 0 && y < 20);
        }
    }
}
