//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench files' API (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, the `criterion_group!`
//! and `criterion_main!` macros) but replaces the statistical harness with
//! a fixed small number of timed iterations per benchmark, printed as one
//! line each. Good enough to smoke-run `cargo bench` offline; not a
//! rigorous measurement tool.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations measured per benchmark (after one warm-up call).
const MEASURED_ITERS: u32 = 3;

/// Top-level handle; create via `Criterion::default()` (the
/// `criterion_main!` macro does this).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// Identifier combining a function name and a parameter, e.g. `hull/1000`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stand-in always runs a fixed count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(&label);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.full);
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&label);
        self
    }

    pub fn finish(self) {}
}

/// Passed to bench closures; `iter` times the routine.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..MEASURED_ITERS {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = MEASURED_ITERS;
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("bench {label:<44} (no iterations)");
        } else {
            let per = self.total / self.iters;
            println!("bench {label:<44} {per:>12.2?}/iter ({} iters)", self.iters);
        }
    }
}

/// Bundles bench functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `fn main` running each group (bench targets use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
