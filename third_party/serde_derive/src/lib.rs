//! Offline stand-in for `serde_derive`.
//!
//! This workspace derives `Serialize`/`Deserialize` on its geometry and
//! config types but never invokes the traits (there is no serializer crate
//! in the dependency graph — JSON rendering is hand-rolled in `sh-trace`).
//! The derives therefore expand to empty impls of the marker traits.

use proc_macro::TokenStream;

/// Extracts the item's type name (the identifier after `struct`/`enum`),
/// skipping attributes and doc comments.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        let s = tt.to_string();
        if saw_kw {
            return Some(s);
        }
        if s == "struct" || s == "enum" {
            saw_kw = true;
        }
    }
    None
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = match type_name(&input) {
        Some(n) => n,
        None => return TokenStream::new(),
    };
    // Generic items would need the generics echoed into the impl header;
    // nothing in this workspace derives serde on a generic type.
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .unwrap_or_default()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
