//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment resolves crates through a registry mirror that is
//! unreachable from this container, so the workspace vendors the tiny part
//! of `parking_lot` it actually uses: `Mutex` and `RwLock` with the
//! poison-free `lock()` / `read()` / `write()` API. Backed by `std::sync`;
//! a poisoned std lock (a thread panicked while holding it) is recovered
//! into the inner value, matching parking_lot's no-poisoning semantics.

use std::sync::{self, TryLockError};

pub use self::mutex::{Mutex, MutexGuard};
pub use self::rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};

mod mutex {
    use super::*;

    /// Poison-free mutex (API subset of `parking_lot::Mutex`).
    #[derive(Default)]
    pub struct Mutex<T: ?Sized> {
        inner: sync::Mutex<T>,
    }

    pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: sync::Mutex::new(value),
            }
        }

        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(sync::PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.inner
                .lock()
                .unwrap_or_else(sync::PoisonError::into_inner)
        }

        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match self.inner.try_lock() {
                Ok(g) => Some(g),
                Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
                Err(TryLockError::WouldBlock) => None,
            }
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner
                .get_mut()
                .unwrap_or_else(sync::PoisonError::into_inner)
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self.try_lock() {
                Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
                None => f.write_str("Mutex { <locked> }"),
            }
        }
    }
}

mod rwlock {
    use super::*;

    /// Poison-free reader-writer lock (API subset of `parking_lot::RwLock`).
    #[derive(Default)]
    pub struct RwLock<T: ?Sized> {
        inner: sync::RwLock<T>,
    }

    pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
    pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

    impl<T> RwLock<T> {
        pub const fn new(value: T) -> RwLock<T> {
            RwLock {
                inner: sync::RwLock::new(value),
            }
        }

        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(sync::PoisonError::into_inner)
        }
    }

    impl<T: ?Sized> RwLock<T> {
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner)
        }

        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner)
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.inner
                .get_mut()
                .unwrap_or_else(sync::PoisonError::into_inner)
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("RwLock { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
