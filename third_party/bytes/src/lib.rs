//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset this workspace uses: [`Bytes`], an immutable,
//! cheaply-cloneable byte buffer (`Arc<[u8]>` under the hood — clones are
//! reference bumps, never copies, which is the property the simulated DFS
//! relies on for zero-copy block reads).

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static slice (no allocation beyond the Arc header).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(s) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a plain slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes { data: Arc::from(s) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(Bytes::from_static(b"xy").to_vec(), vec![b'x', b'y']);
    }
}
