//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::scope` is used in this workspace; it is implemented on
//! `std::thread::scope` (stable since 1.63). The `Scope::spawn` closure
//! receives `&Scope` like crossbeam's, and panics in spawned threads are
//! contained by std's scope (it re-raises on join), so we catch them and
//! report the whole scope as an error, matching crossbeam's contract of
//! returning `Err` when a child panicked.

use std::any::Any;

/// Scope handle passed to [`scope`] closures; spawn detached-until-scope-end
/// threads through it.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so it
    /// can spawn siblings (unused in this workspace, kept for parity).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }),
        }
    }
}

/// Join handle of a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Creates a scope in which all spawned threads are joined before it
/// returns. Returns `Err` with the panic payload when the closure or any
/// spawned thread panicked (crossbeam semantics).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let n = AtomicUsize::new(0);
        let r = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
            42
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(n.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panicking_child_yields_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }
}
